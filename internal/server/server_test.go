package server_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlcm"
	"sqlcm/internal/outbox"
	"sqlcm/internal/rules"
	"sqlcm/internal/server"
	"sqlcm/internal/server/errcode"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/testutil"
)

// startServer brings up a monitored DB behind an in-process listener on a
// free port. Shutdown and Close are the caller's business only when the
// test says so; cleanup is always safe because both are idempotent.
func startServer(t *testing.T, mut func(*server.Config)) (*sqlcm.DB, *server.Server) {
	t.Helper()
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{
		Addr:       "127.0.0.1:0",
		NewSession: db.RemoteSession,
		Drain:      db.Flush,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		db.Close() //nolint:errcheck
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		db.Close() //nolint:errcheck
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second) //nolint:errcheck
		db.Close()                    //nolint:errcheck
	})
	return db, srv
}

func dial(t *testing.T, srv *server.Server) *server.Client {
	t.Helper()
	cli, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "tester", App: "server_test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() }) //nolint:errcheck
	return cli
}

func TestWireSimpleQuery(t *testing.T) {
	_, srv := startServer(t, nil)
	cli := dial(t, srv)

	if _, err := cli.Query("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR, v FLOAT)"); err != nil {
		t.Fatalf("ddl: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := cli.Query(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d', %d.5)", i, i, i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	rows, err := cli.Query("SELECT id, name, v FROM t ORDER BY id")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(rows.Rows) != 3 || len(rows.Columns) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows.Columns[1] != "name" || rows.Rows[0][1].Str() != "row1" {
		t.Fatalf("row decode: %+v", rows.Rows[0])
	}
	if rows.Rows[2][2].Float() != 3.5 {
		t.Fatalf("float decode: %v", rows.Rows[2][2])
	}
	if rows.Tag != "SELECT 3" {
		t.Fatalf("tag: %q", rows.Tag)
	}

	// Empty query is acknowledged, not an error.
	if _, err := cli.Query(""); err != nil {
		t.Fatalf("empty query: %v", err)
	}

	// A statement error arrives as a WireError and the connection stays
	// usable.
	_, err = cli.Query("SELECT nope FROM nothing")
	var we *server.WireError
	if !errors.As(err, &we) {
		t.Fatalf("bad sql: got %v, want WireError", err)
	}
	if rows, err = cli.Query("SELECT COUNT(*) FROM t"); err != nil || rows.Rows[0][0].Int() != 3 {
		t.Fatalf("connection unusable after error: %v %+v", err, rows)
	}
}

func TestWirePreparedStatements(t *testing.T) {
	_, srv := startServer(t, nil)
	cli := dial(t, srv)
	mustQuery(t, cli, "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR)")
	mustQuery(t, cli, "INSERT INTO t VALUES (1, 'one')")
	mustQuery(t, cli, "INSERT INTO t VALUES (2, 'two')")

	if err := cli.Prepare("by_id", "SELECT name FROM t WHERE id = @id", sqltypes.KindInt); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for i, want := range []string{"one", "two"} {
		rows, err := cli.ExecPrepared("by_id", sqltypes.NewInt(int64(i+1)))
		if err != nil {
			t.Fatalf("exec prepared: %v", err)
		}
		if len(rows.Rows) != 1 || rows.Rows[0][0].Str() != want {
			t.Fatalf("prepared row %d: %+v", i, rows.Rows)
		}
	}

	// NULL parameter binds as NULL.
	if err := cli.Prepare("ins", "INSERT INTO t VALUES (@id, @name)", sqltypes.KindInt, sqltypes.KindString); err != nil {
		t.Fatalf("prepare ins: %v", err)
	}
	if _, err := cli.ExecPrepared("ins", sqltypes.NewInt(3), sqltypes.Null); err != nil {
		t.Fatalf("exec with NULL: %v", err)
	}
	rows := mustQuery(t, cli, "SELECT name FROM t WHERE id = 3")
	if !rows.Rows[0][0].IsNull() {
		t.Fatalf("NULL round trip: %v", rows.Rows[0][0])
	}

	// Extended-protocol errors surface as WireError and recover on Sync
	// (the client syncs per call), leaving the connection usable.
	var we *server.WireError
	if _, err := cli.ExecPrepared("no_such_stmt"); !errors.As(err, &we) || we.Code != errcode.UndefinedStmt.SQLSTATE {
		t.Fatalf("unknown stmt: %v", err)
	}
	if err := cli.Prepare("by_id", "SELECT 1", 0); !errors.As(err, &we) || we.Code != errcode.DuplicateStmt.SQLSTATE {
		t.Fatalf("duplicate stmt: %v", err)
	}
	if err := cli.Prepare("bad", "SELECT FROM WHERE"); !errors.As(err, &we) {
		t.Fatalf("bad prepare: %v", err)
	}
	// Wrong arity is caught at Bind.
	if _, err := cli.ExecPrepared("by_id"); !errors.As(err, &we) {
		t.Fatalf("missing params: %v", err)
	}
	rows, err := cli.ExecPrepared("by_id", sqltypes.NewInt(1))
	if err != nil || rows.Rows[0][0].Str() != "one" {
		t.Fatalf("connection unusable after extended errors: %v %+v", err, rows)
	}
}

func mustQuery(t *testing.T, cli *server.Client, sql string) *server.Rows {
	t.Helper()
	rows, err := cli.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rows
}

func TestWirePasswordAuth(t *testing.T) {
	_, srv := startServer(t, func(c *server.Config) { c.Password = "sekrit" })

	if _, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "u", Password: "wrong"}); err == nil {
		t.Fatal("wrong password accepted")
	} else {
		var we *server.WireError
		if !errors.As(err, &we) || we.Code != errcode.InvalidPassword.SQLSTATE {
			t.Fatalf("wrong password error: %v", err)
		}
	}
	cli, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "u", Password: "sekrit"})
	if err != nil {
		t.Fatalf("right password rejected: %v", err)
	}
	defer cli.Close() //nolint:errcheck
	if _, err := cli.Query("CREATE TABLE ok (id INT PRIMARY KEY)"); err != nil {
		t.Fatalf("query after auth: %v", err)
	}
}

func TestWireMaxConns(t *testing.T) {
	_, srv := startServer(t, func(c *server.Config) { c.MaxConns = 2 })
	c1 := dial(t, srv)
	_ = c1
	c2 := dial(t, srv)
	_ = c2
	_, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "u"})
	var we *server.WireError
	if !errors.As(err, &we) || we.Code != errcode.TooManyConns.SQLSTATE {
		t.Fatalf("third connection: got %v, want 53300 WireError", err)
	}
	if st := srv.Stats(); st.Rejected != 1 || st.Active != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWireRemoteAddrProbe: statements arriving over the wire expose the
// connection-scoped probes to rules; embedded sessions keep them NULL.
func TestWireRemoteAddrProbe(t *testing.T) {
	db, srv := startServer(t, nil)
	var remote atomic.Value
	remote.Store("")
	if _, err := db.NewRule("grab", "Query.Commit", "Query.Session_Age >= 0",
		&sqlcm.FuncAction{Name: "grab", Fn: func(env rules.Env, ctx *rules.Ctx) error {
			if v, ok := ctx.Attr("Query.Remote_Addr"); ok && !v.IsNull() {
				remote.Store(v.Str())
			}
			return nil
		}}); err != nil {
		t.Fatal(err)
	}
	cli := dial(t, srv)
	mustQuery(t, cli, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustQuery(t, cli, "SELECT * FROM t")
	if !db.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	got, _ := remote.Load().(string)
	if !strings.HasPrefix(got, "127.0.0.1:") {
		t.Fatalf("Remote_Addr probe: %q", got)
	}
}

// TestWireSigCacheExactlyOnce: many connections preparing and executing
// the same statement share one cached plan, so the monitor computes its
// signature exactly once — §4.2's compute-once discipline extended across
// the wire.
func TestWireSigCacheExactlyOnce(t *testing.T) {
	db, srv := startServer(t, nil)
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs:    []sqlcm.AggCol{{Func: sqlcm.Count, Attr: "ID", Name: "N"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewRule("collect", "Query.Commit", "", &sqlcm.InsertAction{LAT: "ByTemplate"}); err != nil {
		t.Fatal(err)
	}
	setup := dial(t, srv)
	mustQuery(t, setup, "CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
	mustQuery(t, setup, "INSERT INTO t VALUES (1, 1.0)")

	const conns = 16
	base := db.Monitor().SigComputes()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "w", App: "sig"})
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close() //nolint:errcheck
			if err := cli.Prepare("q", "SELECT v FROM t WHERE id = @id", sqltypes.KindInt); err != nil {
				errs <- err
				return
			}
			for j := 0; j < 3; j++ {
				if _, err := cli.ExecPrepared("q", sqltypes.NewInt(1)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Monitor().SigComputes() - base; got != 1 {
		t.Fatalf("signature computed %d times for one statement text across %d connections, want 1", got, conns)
	}
	// Two logical signatures total: the setup INSERT and the shared SELECT
	// — 48 executions across 16 connections collapsed into one group.
	lat, _ := db.LAT("ByTemplate")
	if lat.Len() != 2 {
		t.Fatalf("LAT groups: %d, want 2 (setup INSERT + one shared SELECT signature)", lat.Len())
	}
}

// TestGracefulDrainUnderLoad: Shutdown under live traffic refuses new
// connections, lets in-flight statements finish, drains the monitoring
// outbox with zero dead-lettered Persist actions, and leaks no goroutines.
func TestGracefulDrainUnderLoad(t *testing.T) {
	db, srv := startServer(t, func(c *server.Config) { c.DrainTimeout = 5 * time.Second })
	// Snapshot after the DB and listener are up: the DB's outbox workers
	// live until db.Close, so the leak check covers exactly the goroutines
	// Shutdown owns — the accept loop, connection handlers, drain helpers.
	defer testutil.CheckLeaks(t)()
	if _, err := db.NewRule("persist_all", "Query.Commit", "Query.Query_Type = 'SELECT'",
		&sqlcm.PersistAction{Table: "audit_log", Attrs: []string{"ID", "Query_Text", "Duration"}}); err != nil {
		t.Fatal(err)
	}
	setup := dial(t, srv)
	mustQuery(t, setup, "CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
	mustQuery(t, setup, "INSERT INTO t VALUES (1, 1.0)")

	// Live traffic: workers hammer SELECTs until the server turns them away.
	const workers = 12
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "w", App: "drain"})
			if err != nil {
				return
			}
			defer cli.Close() //nolint:errcheck
			for {
				if _, err := cli.Query("SELECT v FROM t WHERE id = 1"); err != nil {
					return // shutdown notice or closed connection
				}
				completed.Add(1)
			}
		}()
	}

	// Let the load establish, then shut down underneath it.
	deadline := time.Now().Add(5 * time.Second)
	for completed.Load() < 50 {
		if time.Now().After(deadline) {
			t.Fatal("load never ramped up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	wg.Wait()

	// New connections are refused after shutdown.
	if _, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "late"}); err == nil {
		t.Fatal("connection accepted after shutdown")
	}

	// The outbox drained: every Persist action from in-flight statements
	// executed; none were dead-lettered or abandoned.
	st := db.Monitor().Outbox().Stats()
	persist := st.ByKind[outbox.Persist]
	if persist.DeadLetters != 0 || persist.Abandoned != 0 {
		t.Fatalf("persist actions lost: %+v", persist)
	}
	if dl := db.Monitor().Outbox().DeadLetters(); len(dl) != 0 {
		t.Fatalf("dead letters: %+v", dl)
	}
	if persist.Done == 0 {
		t.Fatal("no persist actions executed; the load did not exercise the outbox")
	}
	rows, err := db.ReadTable("audit_log")
	if err != nil || len(rows) == 0 {
		t.Fatalf("audit_log after drain: %d rows, err %v", len(rows), err)
	}
	// The deferred testutil.CheckLeaks verifies the accept loop, connection
	// handlers and drain helpers are all gone.
}

// TestSessionsClosedOnDisconnect: a client that terminates mid-transaction
// gets its session closed and its transaction rolled back.
func TestSessionsClosedOnDisconnect(t *testing.T) {
	_, srv := startServer(t, nil)
	setup := dial(t, srv)
	mustQuery(t, setup, "CREATE TABLE t (id INT PRIMARY KEY)")

	cli, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "txer"})
	if err != nil {
		t.Fatal(err)
	}
	mustQueryC(t, cli, "BEGIN")
	mustQueryC(t, cli, "INSERT INTO t VALUES (1)")
	cli.Close() //nolint:errcheck

	// The rollback frees the table lock; a fresh connection sees no row.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rows, err := setup.Query("SELECT COUNT(*) FROM t")
		if err == nil && rows.Rows[0][0].Int() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("uncommitted txn not rolled back on disconnect: rows=%v err=%v", rows, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustQueryC(t *testing.T, cli *server.Client, sql string) {
	t.Helper()
	if _, err := cli.Query(sql); err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
}
