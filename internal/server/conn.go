package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"sqlcm/internal/engine"
	"sqlcm/internal/server/errcode"
	"sqlcm/internal/sqltypes"
)

// conn serves one client connection. Exactly one goroutine runs serve();
// it owns the engine session for the connection's whole lifetime (the
// session is pinned to it in lockdep builds). The shutdown path touches a
// conn only through atomics and the concurrency-safe net.Conn.
type conn struct {
	srv *Server
	nc  net.Conn

	pr   *protoReader
	pw   *protoWriter
	sess *engine.Session
	// sessp mirrors sess for cross-goroutine readers (the drain-cancel
	// path); the serve goroutine itself uses the plain field.
	sessp atomic.Pointer[engine.Session]

	// stmts holds the connection's named prepared statements; portals
	// bind parameter values to one of them. Single-goroutine state.
	stmts   map[string]*preparedStmt
	portals map[string]*portal

	// inCommand is set while a wire command is executing, so Shutdown can
	// distinguish in-flight connections (left to finish) from idle ones
	// (woken via read deadline).
	inCommand atomic.Bool
	// draining tells the command loop to exit after the current command.
	draining atomic.Bool
	// skipToSync is the extended-protocol error state: after an error,
	// further extended messages are discarded until Sync.
	skipToSync bool
}

// preparedStmt is a named statement plus the parameter kind hints the
// client declared at Parse time.
type preparedStmt struct {
	ps    *engine.Prepared
	kinds []sqltypes.Kind // by parameter position (ParamNames order)
}

// portal is a bound statement awaiting Execute.
type portal struct {
	stmt   *preparedStmt
	params map[string]sqltypes.Value
}

// beginDrain asks the connection to wind down: an idle connection blocked
// in a read is woken immediately; an in-flight one finishes its current
// command first (the loop re-checks draining after every command).
func (c *conn) beginDrain() {
	c.draining.Store(true)
	if !c.inCommand.Load() {
		if err := c.nc.SetReadDeadline(time.Now()); err != nil {
			// The wake-up cannot be armed: without it the idle read
			// would outlive the drain window, so cut the connection.
			c.nc.Close() //nolint:errcheck
		}
	}
}

// cancelForDrain cancels the connection's in-flight statement (if any)
// with reason drain. Called from the shutdown goroutine once the
// graceful window has lapsed; it touches the conn only through atomics.
func (c *conn) cancelForDrain() bool {
	sess := c.sessp.Load()
	if sess == nil {
		return false
	}
	return sess.CancelCurrent(engine.CancelDrain)
}

// serve runs the connection: handshake, then the command loop.
func (c *conn) serve() {
	defer c.nc.Close() //nolint:errcheck
	c.pr = newProtoReader(c.nc)
	c.pw = newProtoWriter(c.nc)
	c.stmts = make(map[string]*preparedStmt)
	c.portals = make(map[string]*portal)

	user, app, ok := c.handshake()
	if !ok {
		return
	}
	c.sess = c.srv.cfg.NewSession(user, app, c.nc.RemoteAddr().String())
	c.sess.PinOwner()
	c.sessp.Store(c.sess)
	defer c.sess.Close() //nolint:errcheck

	for {
		// Deadline before the draining check: beginDrain stores the flag
		// and then arms an immediate read deadline, so whichever order the
		// two goroutines interleave in, this loop either sees the flag here
		// or keeps the immediate deadline and wakes from the read below. A
		// deadline we cannot set means a dead connection: stop serving it.
		if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.ReadTimeout)); err != nil {
			return
		}
		if c.draining.Load() {
			c.pw.writeError(errcode.AdminShutdown, "server is shutting down") //nolint:errcheck
			c.flush()                                                         //nolint:errcheck
			return
		}
		typ, body, err := c.pr.readMessage()
		if err != nil {
			return // disconnect, idle timeout, or drain wake-up
		}
		c.inCommand.Store(true)
		cont := c.dispatch(typ, body)
		c.inCommand.Store(false)
		if !cont {
			return
		}
	}
}

// dispatch handles one frontend message; false ends the connection.
func (c *conn) dispatch(typ byte, body []byte) bool {
	switch typ {
	case msgTerminate:
		return false
	case msgQuery:
		return c.handleSimpleQuery(body)
	case msgParse:
		return c.handleParse(body)
	case msgBind:
		return c.handleBind(body)
	case msgExecute:
		return c.handleExecute(body)
	case msgDescribe:
		return c.handleDescribe(body)
	case msgCloseStmt:
		return c.handleClose(body)
	case msgSync:
		c.skipToSync = false
		return c.ready()
	default:
		c.srv.errors.Add(1)
		c.pw.writeError(errcode.ProtocolViolation, fmt.Sprintf("unexpected message %q", typ)) //nolint:errcheck
		return c.flush() == nil
	}
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

// handshake runs the startup/auth exchange and returns the session
// identity. On failure the error has been written and the connection is
// done.
func (c *conn) handshake() (user, app string, ok bool) {
	if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.ReadTimeout)); err != nil {
		return "", "", false
	}
	body, err := c.pr.readStartup()
	if err != nil {
		return "", "", false
	}
	p := payload{b: body}
	ver, err := p.int32()
	if err != nil {
		return "", "", false
	}
	switch ver {
	case sslRequest:
		// No TLS: answer 'N' and expect the real startup next.
		if _, err := c.nc.Write([]byte{'N'}); err != nil {
			return "", "", false
		}
		if body, err = c.pr.readStartup(); err != nil {
			return "", "", false
		}
		p = payload{b: body}
		if ver, err = p.int32(); err != nil {
			return "", "", false
		}
	case cancelReqest:
		return "", "", false // out-of-band cancel: not supported, drop
	}
	if ver != protoVersion {
		c.fail(errcode.ProtocolViolation, fmt.Sprintf("unsupported protocol version %d", ver))
		return "", "", false
	}
	params := map[string]string{}
	for p.remaining() > 1 {
		k, err := p.cstring()
		if err != nil || k == "" {
			break
		}
		v, err := p.cstring()
		if err != nil {
			break
		}
		params[k] = v
	}
	user = params["user"]
	app = params["application_name"]

	if c.srv.cfg.Password != "" {
		c.pw.begin(msgAuth)
		c.pw.putInt32(authCleartext)
		c.pw.end() //nolint:errcheck
		c.flush()  //nolint:errcheck
		if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.ReadTimeout)); err != nil {
			return "", "", false
		}
		typ, body, err := c.pr.readMessage()
		if err != nil || typ != msgPassword {
			return "", "", false
		}
		pp := payload{b: body}
		pass, _ := pp.cstring()
		if pass != c.srv.cfg.Password {
			c.fail(errcode.InvalidPassword, fmt.Sprintf("password authentication failed for user %q", user))
			return "", "", false
		}
	}

	c.pw.begin(msgAuth)
	c.pw.putInt32(authOK)
	c.pw.end() //nolint:errcheck
	c.pw.begin(msgParameterStatus)
	c.pw.putString("server_version")
	c.pw.putString("sqlcm")
	c.pw.end() //nolint:errcheck
	c.pw.begin(msgBackendKeyData)
	c.pw.putInt32(int32(c.srv.accepted.Load())) // backend "pid"
	c.pw.putInt32(0)                            // secret (cancel unsupported)
	c.pw.end()                                  //nolint:errcheck
	if !c.ready() {
		return "", "", false
	}
	return user, app, true
}

// fail writes one error response and flushes (connection-fatal paths).
func (c *conn) fail(code errcode.Code, msg string) {
	c.srv.errors.Add(1)
	c.pw.writeError(code, msg) //nolint:errcheck
	c.flush()                  //nolint:errcheck
}

// ready sends ReadyForQuery with the session's transaction status.
func (c *conn) ready() bool {
	status := byte(txIdle)
	if c.sess != nil && c.sess.InTxn() {
		status = txInTxn
	}
	c.pw.begin(msgReadyForQuery)
	c.pw.putByte(status)
	c.pw.end() //nolint:errcheck
	return c.flush() == nil
}

// flush pushes buffered output under the write deadline.
func (c *conn) flush() error {
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout)); err != nil {
		return err
	}
	return c.pw.flush()
}

// ---------------------------------------------------------------------------
// Simple query
// ---------------------------------------------------------------------------

func (c *conn) handleSimpleQuery(body []byte) bool {
	p := payload{b: body}
	sql, err := p.cstring()
	if err != nil {
		c.fail(errcode.ProtocolViolation, "malformed Query message")
		return false
	}
	if sql == "" {
		c.pw.begin(msgEmptyQueryResp)
		c.pw.end() //nolint:errcheck
		return c.ready()
	}
	if c.shedStatement(sql) {
		c.srv.errors.Add(1)
		c.pw.writeError(errcode.Overloaded, shedMessage) //nolint:errcheck
		return c.ready()
	}
	ctx, cancel := c.stmtCtx()
	res, execErr := c.sess.ExecContext(ctx, sql, nil)
	cancel()
	c.srv.statements.Add(1)
	if execErr != nil {
		c.srv.errors.Add(1)
		c.pw.writeError(execErrCode(c.srv, execErr), execErr.Error()) //nolint:errcheck
		return c.ready()
	}
	c.writeResult(res)
	return c.ready()
}

// shedMessage is the retryable refusal clients see when admission
// control sheds a statement.
const shedMessage = "statement shed: monitor overloaded, retry later"

// shedStatement consults the overload predicate and, when shedding,
// records the refusal as a Query.Cancelled event (reason shed) so the
// defensive action is itself monitored.
func (c *conn) shedStatement(sql string) bool {
	if c.srv.cfg.Overloaded == nil || !c.srv.cfg.Overloaded() {
		return false
	}
	c.srv.shed.Add(1)
	c.sess.NoteShedStatement(sql)
	return true
}

// stmtCtx builds the per-statement context carrying the configured
// statement timeout (a no-op background context when disabled).
//
//sqlcm:ctx-root the statement lifetime starts at the wire front-end; there is no caller context above the connection loop
func (c *conn) stmtCtx() (context.Context, context.CancelFunc) {
	st := c.srv.cfg.StatementTimeout
	if st <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeoutCause(context.Background(), st, engine.CauseStatementTimeout)
}

// execErrCode maps a statement failure onto its wire code: defensive
// cancellations (timeout, shed, drain, admin) are the retryable 57014,
// everything else is the generic execution error.
func execErrCode(srv *Server, err error) errcode.Code {
	var ce *engine.CancelledError
	if errors.As(err, &ce) {
		if ce.Reason == engine.CancelTimeout || ce.Reason == engine.CancelDrain {
			srv.cancelled.Add(1)
		}
		return errcode.QueryCancelled
	}
	return errcode.SyntaxOrExec
}

// writeResult frames a statement result: RowDescription + DataRows for
// row-returning statements, then CommandComplete.
func (c *conn) writeResult(res *engine.Result) {
	if res != nil && res.Columns != nil {
		c.pw.begin(msgRowDescription)
		c.pw.putInt16(int16(len(res.Columns)))
		kinds := columnKinds(res)
		for i, col := range res.Columns {
			c.pw.putString(col)
			c.pw.putInt32(0) // table oid
			c.pw.putInt16(0) // attr number
			c.pw.putInt32(kindOID(kinds[i]))
			c.pw.putInt16(-1) // type size
			c.pw.putInt32(-1) // type modifier
			c.pw.putInt16(0)  // text format
		}
		c.pw.end() //nolint:errcheck
		for _, row := range res.Rows {
			c.pw.begin(msgDataRow)
			c.pw.putInt16(int16(len(row)))
			for _, v := range row {
				if s, ok := encodeValue(v); ok {
					c.pw.putInt32(int32(len(s)))
					c.pw.putBytes([]byte(s))
				} else {
					c.pw.putInt32(-1) // NULL
				}
			}
			c.pw.end() //nolint:errcheck
		}
	}
	c.pw.begin(msgCommandComplete)
	c.pw.putString(commandTag(res))
	c.pw.end() //nolint:errcheck
}

// columnKinds infers each result column's wire type from the first
// non-NULL value in that column (all-NULL or empty → text).
func columnKinds(res *engine.Result) []sqltypes.Kind {
	kinds := make([]sqltypes.Kind, len(res.Columns))
	for i := range kinds {
		kinds[i] = sqltypes.KindString
		for _, row := range res.Rows {
			if i < len(row) && !row[i].IsNull() {
				kinds[i] = row[i].Kind()
				break
			}
		}
	}
	return kinds
}

// commandTag renders the CommandComplete tag for a result.
func commandTag(res *engine.Result) string {
	if res == nil {
		return "OK"
	}
	if res.Columns != nil {
		return fmt.Sprintf("SELECT %d", len(res.Rows))
	}
	return fmt.Sprintf("OK %d", res.Affected)
}

// ---------------------------------------------------------------------------
// Extended protocol: Parse / Bind / Execute / Describe / Close
// ---------------------------------------------------------------------------

// extendedError reports an extended-protocol error and arms skip-to-Sync.
func (c *conn) extendedError(code errcode.Code, err error) bool {
	c.srv.errors.Add(1)
	c.skipToSync = true
	c.pw.writeError(code, err.Error()) //nolint:errcheck
	return c.flush() == nil
}

func (c *conn) handleParse(body []byte) bool {
	if c.skipToSync {
		return true
	}
	p := payload{b: body}
	name, err1 := p.cstring()
	sql, err2 := p.cstring()
	if err1 != nil || err2 != nil {
		c.fail(errcode.ProtocolViolation, "malformed Parse message")
		return false
	}
	nKinds, err := p.int16()
	if err != nil {
		c.fail(errcode.ProtocolViolation, "malformed Parse message")
		return false
	}
	kinds := make([]sqltypes.Kind, 0, nKinds)
	for i := 0; i < int(nKinds); i++ {
		oid, err := p.int32()
		if err != nil {
			c.fail(errcode.ProtocolViolation, "malformed Parse message")
			return false
		}
		kinds = append(kinds, oidKind(oid))
	}
	if name != "" {
		if _, dup := c.stmts[name]; dup {
			return c.extendedError(errcode.DuplicateStmt, fmt.Errorf("prepared statement %q already exists", name))
		}
	}
	ps, err := c.sess.Prepare(sql)
	if err != nil {
		return c.extendedError(errcode.SyntaxOrExec, err)
	}
	c.stmts[name] = &preparedStmt{ps: ps, kinds: kinds}
	c.pw.begin(msgParseComplete)
	c.pw.end() //nolint:errcheck
	return true
}

func (c *conn) handleBind(body []byte) bool {
	if c.skipToSync {
		return true
	}
	p := payload{b: body}
	portalName, err1 := p.cstring()
	stmtName, err2 := p.cstring()
	if err1 != nil || err2 != nil {
		c.fail(errcode.ProtocolViolation, "malformed Bind message")
		return false
	}
	stmt, ok := c.stmts[stmtName]
	if !ok {
		return c.extendedError(errcode.UndefinedStmt, fmt.Errorf("unknown prepared statement %q", stmtName))
	}
	// Parameter format codes (all must be text).
	nFmt, err := p.int16()
	if err != nil {
		c.fail(errcode.ProtocolViolation, "malformed Bind message")
		return false
	}
	for i := 0; i < int(nFmt); i++ {
		f, err := p.int16()
		if err != nil {
			c.fail(errcode.ProtocolViolation, "malformed Bind message")
			return false
		}
		if f != 0 {
			return c.extendedError(errcode.ProtocolViolation, fmt.Errorf("binary parameter format not supported"))
		}
	}
	nParams, err := p.int16()
	if err != nil {
		c.fail(errcode.ProtocolViolation, "malformed Bind message")
		return false
	}
	names := stmt.ps.ParamNames()
	if int(nParams) != len(names) {
		return c.extendedError(errcode.SyntaxOrExec,
			fmt.Errorf("statement has %d parameters, bind supplies %d", len(names), nParams))
	}
	params := make(map[string]sqltypes.Value, nParams)
	for i := 0; i < int(nParams); i++ {
		raw, notNull, err := p.lenBytes()
		if err != nil {
			c.fail(errcode.ProtocolViolation, "malformed Bind message")
			return false
		}
		if !notNull {
			params[names[i]] = sqltypes.Null
			continue
		}
		kind := sqltypes.KindString
		if i < len(stmt.kinds) {
			kind = stmt.kinds[i]
		}
		v, err := decodeValue(kind, string(raw))
		if err != nil {
			return c.extendedError(errcode.SyntaxOrExec, err)
		}
		params[names[i]] = v
	}
	// Result format codes: present but ignored (responses are text).
	c.portals[portalName] = &portal{stmt: stmt, params: params}
	c.pw.begin(msgBindComplete)
	c.pw.end() //nolint:errcheck
	return true
}

func (c *conn) handleExecute(body []byte) bool {
	if c.skipToSync {
		return true
	}
	p := payload{b: body}
	portalName, err := p.cstring()
	if err != nil {
		c.fail(errcode.ProtocolViolation, "malformed Execute message")
		return false
	}
	pt, ok := c.portals[portalName]
	if !ok {
		return c.extendedError(errcode.UndefinedStmt, fmt.Errorf("unknown portal %q", portalName))
	}
	if c.shedStatement(pt.stmt.ps.SQL()) {
		return c.extendedError(errcode.Overloaded, errors.New(shedMessage))
	}
	ctx, cancel := c.stmtCtx()
	res, execErr := pt.stmt.ps.ExecContext(ctx, pt.params)
	cancel()
	c.srv.statements.Add(1)
	if execErr != nil {
		return c.extendedError(execErrCode(c.srv, execErr), execErr)
	}
	// Deviation from PostgreSQL: the RowDescription rides with Execute
	// (row shapes are only known after execution here), so clients skip
	// Describe entirely.
	c.writeResult(res)
	return true
}

func (c *conn) handleDescribe(body []byte) bool {
	if c.skipToSync {
		return true
	}
	p := payload{b: body}
	kind, err1 := p.byte()
	name, err2 := p.cstring()
	if err1 != nil || err2 != nil {
		c.fail(errcode.ProtocolViolation, "malformed Describe message")
		return false
	}
	switch kind {
	case 'S':
		if _, ok := c.stmts[name]; !ok {
			return c.extendedError(errcode.UndefinedStmt, fmt.Errorf("unknown prepared statement %q", name))
		}
	case 'P':
		if _, ok := c.portals[name]; !ok {
			return c.extendedError(errcode.UndefinedStmt, fmt.Errorf("unknown portal %q", name))
		}
	}
	// Documented deviation: row shapes are not known before execution, so
	// Describe always answers NoData; Execute carries the RowDescription.
	c.pw.begin(msgNoData)
	c.pw.end() //nolint:errcheck
	return true
}

func (c *conn) handleClose(body []byte) bool {
	if c.skipToSync {
		return true
	}
	p := payload{b: body}
	kind, err1 := p.byte()
	name, err2 := p.cstring()
	if err1 != nil || err2 != nil {
		c.fail(errcode.ProtocolViolation, "malformed Close message")
		return false
	}
	switch kind {
	case 'S':
		delete(c.stmts, name)
	case 'P':
		delete(c.portals, name)
	}
	c.pw.begin(msgCloseComplete)
	c.pw.end() //nolint:errcheck
	return true
}
