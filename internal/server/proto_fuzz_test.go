package server

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frame builds one typed wire message for the seed corpus.
func frame(typ byte, body []byte) []byte {
	out := make([]byte, 0, 5+len(body))
	out = append(out, typ)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(body)+4))
	out = append(out, n[:]...)
	return append(out, body...)
}

// FuzzProtoFrame drives the frame parser and the payload cursor over
// arbitrary bytes: truncated frames, hostile length prefixes, embedded
// NULs, oversized declarations. The invariant is simply that parsing
// terminates with an error or a bounded message — never a panic and
// never an allocation proportional to a declared-but-absent length.
func FuzzProtoFrame(f *testing.F) {
	f.Add(frame(msgQuery, append([]byte("SELECT 1"), 0)))
	f.Add(frame(msgTerminate, nil))
	// Parse with one kind hint.
	parse := append([]byte("stmt\x00SELECT @a\x00"), 0, 1, 0, 0, 0, 20)
	f.Add(frame(msgParse, parse))
	// Bind with one NULL parameter.
	bind := append([]byte("\x00stmt\x00"), 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff, 0, 0)
	f.Add(frame(msgBind, bind))
	// Error response round trip.
	errBody := []byte("SERROR\x00C42601\x00Mboom\x00\x00")
	f.Add(frame(msgErrorResponse, errBody))
	// Length prefix far larger than the data behind it.
	f.Add([]byte{msgQuery, 0x00, 0xff, 0xff, 0xff, 'x'})
	// Length prefix below the 4-byte minimum, and a negative one.
	f.Add([]byte{msgQuery, 0x00, 0x00, 0x00, 0x02})
	f.Add([]byte{msgQuery, 0xff, 0xff, 0xff, 0xfe})
	// Startup-shaped payload (no type byte).
	f.Add([]byte{0x00, 0x00, 0x00, 0x09, 0x00, 0x03, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Startup path first: untyped length-prefixed payload.
		if body, err := newProtoReader(bytes.NewReader(data)).readStartup(); err == nil {
			p := payload{b: body}
			p.int32()   //nolint:errcheck
			p.cstring() //nolint:errcheck
			p.cstring() //nolint:errcheck
		}
		// Typed message stream: parse frames until the input runs out,
		// walking each payload the way the handlers do.
		pr := newProtoReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			typ, body, err := pr.readMessage()
			if err != nil {
				return
			}
			if len(body) > maxMessageLen {
				t.Fatalf("message %q exceeds maxMessageLen: %d", typ, len(body))
			}
			p := payload{b: body}
			switch typ {
			case msgQuery:
				p.cstring() //nolint:errcheck
			case msgParse:
				p.cstring() //nolint:errcheck
				p.cstring() //nolint:errcheck
				if n, err := p.int16(); err == nil {
					for j := 0; j < int(n); j++ {
						if _, err := p.int32(); err != nil {
							break
						}
					}
				}
			case msgBind:
				p.cstring() //nolint:errcheck
				p.cstring() //nolint:errcheck
				if n, err := p.int16(); err == nil {
					for j := 0; j < int(n); j++ {
						if _, err := p.int16(); err != nil {
							break
						}
					}
				}
				if n, err := p.int16(); err == nil {
					for j := 0; j < int(n); j++ {
						if _, _, err := p.lenBytes(); err != nil {
							break
						}
					}
				}
			case msgErrorResponse:
				parseError(body)
			default:
				p.byte()    //nolint:errcheck
				p.cstring() //nolint:errcheck
			}
		}
	})
}
