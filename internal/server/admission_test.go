package server_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlcm"
	"sqlcm/internal/rules"
	"sqlcm/internal/server"
	"sqlcm/internal/server/errcode"
	"sqlcm/internal/testutil"
)

// cancelTap installs an ECA rule on Query.Cancelled that records every
// event's Cancel_Reason — the monitoring-side view of the server's
// defensive actions, exactly as a production rule would see them.
func cancelTap(t *testing.T, db *sqlcm.DB) func() []string {
	t.Helper()
	var mu sync.Mutex
	var reasons []string
	if _, err := db.NewRule("tap_cancelled", "Query.Cancelled", "",
		&sqlcm.FuncAction{Name: "tap", Fn: func(env rules.Env, ctx *rules.Ctx) error {
			if v, ok := ctx.Attr("Query.Cancel_Reason"); ok && !v.IsNull() {
				mu.Lock()
				reasons = append(reasons, v.Str())
				mu.Unlock()
			}
			return nil
		}}); err != nil {
		t.Fatal(err)
	}
	return func() []string {
		if !db.Flush(5 * time.Second) {
			t.Fatal("flush timed out")
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), reasons...)
	}
}

// TestStatementTimeout: a statement blocked past the configured timeout
// is cancelled at its lock-wait boundary, the client gets the retryable
// 57014, and exactly one Query.Cancelled event with Cancel_Reason
// 'timeout' reaches the rules.
func TestStatementTimeout(t *testing.T) {
	db, srv := startServer(t, func(c *server.Config) {
		c.StatementTimeout = 150 * time.Millisecond
	})
	reasons := cancelTap(t, db)

	setup := dial(t, srv)
	mustQuery(t, setup, "CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
	mustQuery(t, setup, "INSERT INTO t VALUES (1, 1.0)")

	// An embedded session parks an exclusive lock on the row; the wire
	// statement below blocks on it until the timeout fires.
	holder := db.Session("holder", "admission_test")
	defer holder.Close() //nolint:errcheck
	if _, err := holder.Exec("BEGIN", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Exec("UPDATE t SET v = 2.0 WHERE id = 1", nil); err != nil {
		t.Fatal(err)
	}

	cli := dial(t, srv)
	start := time.Now()
	_, err := cli.Query("UPDATE t SET v = 3.0 WHERE id = 1")
	waited := time.Since(start)
	var we *server.WireError
	if !errors.As(err, &we) || we.Code != errcode.QueryCancelled.SQLSTATE {
		t.Fatalf("blocked statement: got %v, want WireError %s", err, errcode.QueryCancelled.SQLSTATE)
	}
	if waited < 100*time.Millisecond {
		t.Fatalf("statement failed after %v; it never reached the lock wait", waited)
	}

	// The connection survives its cancelled statement.
	if _, err := holder.Exec("COMMIT", nil); err != nil {
		t.Fatal(err)
	}
	if rows := mustQuery(t, cli, "SELECT v FROM t WHERE id = 1"); rows.Rows[0][0].Float() != 2.0 {
		t.Fatalf("cancelled update applied anyway: %v", rows.Rows[0][0])
	}

	if got := reasons(); len(got) != 1 || got[0] != "timeout" {
		t.Fatalf("Query.Cancelled reasons: %v, want exactly [timeout]", got)
	}
	if st := srv.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats.Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestStatementShed: with the overload predicate asserted, statements are
// refused with the retryable 53400 on both protocol paths, each refusal
// is a Query.Cancelled event with reason 'shed', and deasserting the
// predicate restores service on the same connection.
func TestStatementShed(t *testing.T) {
	var overloaded atomic.Bool
	db, srv := startServer(t, func(c *server.Config) {
		c.Overloaded = overloaded.Load
	})
	reasons := cancelTap(t, db)

	cli := dial(t, srv)
	mustQuery(t, cli, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustQuery(t, cli, "INSERT INTO t VALUES (1)")
	if err := cli.Prepare("sel", "SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}

	overloaded.Store(true)
	var we *server.WireError
	if _, err := cli.Query("SELECT id FROM t"); !errors.As(err, &we) || we.Code != errcode.Overloaded.SQLSTATE {
		t.Fatalf("simple query under overload: got %v, want WireError %s", err, errcode.Overloaded.SQLSTATE)
	}
	if _, err := cli.ExecPrepared("sel"); !errors.As(err, &we) || we.Code != errcode.Overloaded.SQLSTATE {
		t.Fatalf("extended query under overload: got %v, want WireError %s", err, errcode.Overloaded.SQLSTATE)
	}

	overloaded.Store(false)
	rows, err := cli.Query("SELECT id FROM t")
	if err != nil || len(rows.Rows) != 1 {
		t.Fatalf("query after overload cleared: %v %+v", err, rows)
	}

	if st := srv.Stats(); st.Shed != 2 {
		t.Fatalf("stats.Shed = %d, want 2", st.Shed)
	}
	got := reasons()
	if len(got) != 2 {
		t.Fatalf("Query.Cancelled events: %v, want two", got)
	}
	for _, r := range got {
		if r != "shed" {
			t.Fatalf("Cancel_Reason = %q, want shed", r)
		}
	}
}

// TestAdmissionBackpressure: at MaxConns a new connection waits in the
// backpressure window instead of being refused, and is admitted the
// moment a slot frees. Nothing is rejected.
func TestAdmissionBackpressure(t *testing.T) {
	_, srv := startServer(t, func(c *server.Config) {
		c.MaxConns = 1
		c.AdmissionWait = 5 * time.Second
	})
	first, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "first"})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		cli *server.Client
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		cli, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "second"})
		done <- outcome{cli, err}
	}()

	// The second dial must be parked in the admission wait, not refused.
	select {
	case o := <-done:
		if o.err == nil {
			o.cli.Close() //nolint:errcheck
		}
		t.Fatalf("second connection resolved while the slot was held: err=%v", o.err)
	case <-time.After(200 * time.Millisecond):
	}

	first.Close() //nolint:errcheck
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("second connection after slot freed: %v", o.err)
		}
		if _, err := o.cli.Query("CREATE TABLE bp (id INT PRIMARY KEY)"); err != nil {
			t.Fatalf("query on admitted connection: %v", err)
		}
		o.cli.Close() //nolint:errcheck
	case <-time.After(5 * time.Second):
		t.Fatal("second connection never admitted after the slot freed")
	}

	if st := srv.Stats(); st.Rejected != 0 || st.Accepted != 2 {
		t.Fatalf("stats: %+v, want 2 accepted / 0 rejected", st)
	}
}

// TestDrainCancelsInFlight: a statement still running when Shutdown's
// graceful window lapses is cancelled with reason 'drain' — its client
// gets the retryable 57014 and the drain completes without force-closes.
func TestDrainCancelsInFlight(t *testing.T) {
	db, srv := startServer(t, nil)
	defer testutil.CheckLeaks(t)()
	reasons := cancelTap(t, db)

	setup := db.Session("setup", "admission_test")
	defer setup.Close() //nolint:errcheck
	if _, err := setup.Exec("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("INSERT INTO t VALUES (1, 1.0)", nil); err != nil {
		t.Fatal(err)
	}
	// The lock holder is an embedded session, outside the server's drain
	// reach, so the wire statement below stays blocked through the whole
	// graceful window.
	holder := db.Session("holder", "admission_test")
	defer holder.Close() //nolint:errcheck
	if _, err := holder.Exec("BEGIN", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Exec("UPDATE t SET v = 2.0 WHERE id = 1", nil); err != nil {
		t.Fatal(err)
	}

	cli, err := server.Dial(srv.Addr().String(), server.ClientConfig{User: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	queryErr := make(chan error, 1)
	go func() {
		_, err := cli.Query("UPDATE t SET v = 3.0 WHERE id = 1")
		queryErr <- err
	}()

	// Wait for the statement to park on the lock before shutting down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		blocked := false
		for _, q := range db.ActiveQueries() {
			if q.User == "victim" {
				blocked = true
			}
		}
		if blocked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim statement never started")
		}
		time.Sleep(time.Millisecond)
	}

	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown force-closed connections: %v", err)
	}
	var we *server.WireError
	if err := <-queryErr; !errors.As(err, &we) || we.Code != errcode.QueryCancelled.SQLSTATE {
		t.Fatalf("drained statement: got %v, want WireError %s", err, errcode.QueryCancelled.SQLSTATE)
	}
	if _, err := holder.Exec("ROLLBACK", nil); err != nil {
		t.Fatal(err)
	}

	if got := reasons(); len(got) != 1 || got[0] != "drain" {
		t.Fatalf("Query.Cancelled reasons: %v, want exactly [drain]", got)
	}
	if st := srv.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats.Cancelled = %d, want 1", st.Cancelled)
	}
}
