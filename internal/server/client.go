package server

import (
	"fmt"
	"net"
	"time"

	"sqlcm/internal/sqltypes"
)

// Client is a minimal synchronous protocol client: enough for the load
// harness, the smoke tier and the wire tests. One Client drives one
// connection from one goroutine.
type Client struct {
	nc      net.Conn
	pr      *protoReader
	pw      *protoWriter
	timeout time.Duration
}

// ClientConfig tunes a Dial.
type ClientConfig struct {
	User     string
	App      string
	Password string
	// Timeout bounds the dial and each request/response exchange. 0 means
	// the default of 30s.
	Timeout time.Duration
}

// Rows is a decoded query result.
type Rows struct {
	Columns []string
	Kinds   []sqltypes.Kind
	Rows    [][]sqltypes.Value
	Tag     string
}

// Dial connects, performs the startup/auth handshake and waits for
// ReadyForQuery.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, pr: newProtoReader(nc), pw: newProtoWriter(nc), timeout: cfg.Timeout}
	c.deadline(cfg.Timeout)
	params := map[string]string{"user": cfg.User}
	if cfg.App != "" {
		params["application_name"] = cfg.App
	}
	if err := c.pw.writeStartup(params); err != nil {
		nc.Close() //nolint:errcheck
		return nil, err
	}
	if err := c.auth(cfg); err != nil {
		nc.Close() //nolint:errcheck
		return nil, err
	}
	return c, nil
}

func (c *Client) deadline(d time.Duration) {
	c.nc.SetDeadline(time.Now().Add(d)) //nolint:errcheck
}

// auth consumes the authentication exchange up to the first ReadyForQuery.
func (c *Client) auth(cfg ClientConfig) error {
	for {
		typ, body, err := c.pr.readMessage()
		if err != nil {
			return err
		}
		switch typ {
		case msgAuth:
			p := payload{b: body}
			code, err := p.int32()
			if err != nil {
				return err
			}
			switch code {
			case authOK:
			case authCleartext:
				c.pw.begin(msgPassword)
				c.pw.putString(cfg.Password)
				if err := c.pw.end(); err != nil {
					return err
				}
				if err := c.pw.flush(); err != nil {
					return err
				}
			default:
				return fmt.Errorf("server: unsupported auth code %d", code)
			}
		case msgParameterStatus, msgBackendKeyData:
			// informational
		case msgReadyForQuery:
			return nil
		case msgErrorResponse:
			return parseError(body)
		default:
			return fmt.Errorf("server: unexpected message %q during auth", typ)
		}
	}
}

// Close terminates the connection politely.
func (c *Client) Close() error {
	c.pw.begin(msgTerminate)
	c.pw.end()   //nolint:errcheck
	c.pw.flush() //nolint:errcheck
	return c.nc.Close()
}

// Query runs one statement through the simple-query protocol.
func (c *Client) Query(sql string) (*Rows, error) {
	c.deadline(c.timeout)
	c.pw.begin(msgQuery)
	c.pw.putString(sql)
	if err := c.pw.end(); err != nil {
		return nil, err
	}
	if err := c.pw.flush(); err != nil {
		return nil, err
	}
	return c.readResult(true)
}

// Prepare creates a named server-side statement. kinds are per-parameter
// type hints in the statement's first-appearance @param order (missing
// entries default to string).
func (c *Client) Prepare(name, sql string, kinds ...sqltypes.Kind) error {
	c.deadline(c.timeout)
	c.pw.begin(msgParse)
	c.pw.putString(name)
	c.pw.putString(sql)
	c.pw.putInt16(int16(len(kinds)))
	for _, k := range kinds {
		c.pw.putInt32(kindOID(k))
	}
	if err := c.pw.end(); err != nil {
		return err
	}
	if err := c.sync(); err != nil {
		return err
	}
	return c.drainToReady(msgParseComplete)
}

// ExecPrepared binds values (text format, nil-pointer semantics via NULL
// handled by sqltypes.Null) to a named statement and executes it.
func (c *Client) ExecPrepared(name string, values ...sqltypes.Value) (*Rows, error) {
	c.deadline(c.timeout)
	c.pw.begin(msgBind)
	c.pw.putString("") // unnamed portal
	c.pw.putString(name)
	c.pw.putInt16(0) // no format codes: all text
	c.pw.putInt16(int16(len(values)))
	for _, v := range values {
		if s, ok := encodeValue(v); ok {
			c.pw.putInt32(int32(len(s)))
			c.pw.putBytes([]byte(s))
		} else {
			c.pw.putInt32(-1)
		}
	}
	c.pw.putInt16(0) // no result format codes
	if err := c.pw.end(); err != nil {
		return nil, err
	}
	c.pw.begin(msgExecute)
	c.pw.putString("") // unnamed portal
	c.pw.putInt32(0)   // no row limit
	if err := c.pw.end(); err != nil {
		return nil, err
	}
	if err := c.sync(); err != nil {
		return nil, err
	}
	return c.readResult(false)
}

// sync frames and flushes a Sync message.
func (c *Client) sync() error {
	c.pw.begin(msgSync)
	if err := c.pw.end(); err != nil {
		return err
	}
	return c.pw.flush()
}

// drainToReady consumes messages until ReadyForQuery, requiring that the
// expected completion message was seen and surfacing any error response.
func (c *Client) drainToReady(want byte) error {
	var sawWant bool
	var wireErr error
	for {
		typ, body, err := c.pr.readMessage()
		if err != nil {
			return err
		}
		switch typ {
		case want:
			sawWant = true
		case msgErrorResponse:
			wireErr = parseError(body)
		case msgReadyForQuery:
			if wireErr != nil {
				return wireErr
			}
			if !sawWant {
				return fmt.Errorf("server: missing %q completion", want)
			}
			return nil
		}
	}
}

// readResult consumes one statement's response up to ReadyForQuery.
func (c *Client) readResult(simple bool) (*Rows, error) {
	res := &Rows{}
	var wireErr error
	for {
		typ, body, err := c.pr.readMessage()
		if err != nil {
			return nil, err
		}
		p := payload{b: body}
		switch typ {
		case msgRowDescription:
			n, err := p.int16()
			if err != nil {
				return nil, err
			}
			res.Columns = make([]string, 0, n)
			res.Kinds = make([]sqltypes.Kind, 0, n)
			for i := 0; i < int(n); i++ {
				name, err := p.cstring()
				if err != nil {
					return nil, err
				}
				p.int32() //nolint:errcheck // table oid
				p.int16() //nolint:errcheck // attr number
				oid, err := p.int32()
				if err != nil {
					return nil, err
				}
				p.int16() //nolint:errcheck // size
				p.int32() //nolint:errcheck // modifier
				p.int16() //nolint:errcheck // format
				res.Columns = append(res.Columns, name)
				res.Kinds = append(res.Kinds, oidKind(oid))
			}
		case msgDataRow:
			n, err := p.int16()
			if err != nil {
				return nil, err
			}
			row := make([]sqltypes.Value, 0, n)
			for i := 0; i < int(n); i++ {
				raw, notNull, err := p.lenBytes()
				if err != nil {
					return nil, err
				}
				if !notNull {
					row = append(row, sqltypes.Null)
					continue
				}
				kind := sqltypes.KindString
				if i < len(res.Kinds) {
					kind = res.Kinds[i]
				}
				v, err := decodeValue(kind, string(raw))
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			res.Rows = append(res.Rows, row)
		case msgCommandComplete:
			tag, _ := p.cstring()
			res.Tag = tag
		case msgEmptyQueryResp, msgParseComplete, msgBindComplete, msgCloseComplete, msgNoData:
			// structural acknowledgements
		case msgErrorResponse:
			wireErr = parseError(body)
			if simple {
				// Simple protocol still ends with ReadyForQuery.
				continue
			}
		case msgReadyForQuery:
			if wireErr != nil {
				return nil, wireErr
			}
			return res, nil
		default:
			return nil, fmt.Errorf("server: unexpected message %q in result", typ)
		}
	}
}
