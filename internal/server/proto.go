// Package server is SQLCM's network front-end: a TCP server speaking a
// PostgreSQL-v3-style message protocol (startup/auth handshake, simple
// query, parse/bind/execute for prepared statements, row descriptions and
// data rows, error responses, terminate), mapping one goroutine-owned
// engine.Session onto each connection.
//
// The protocol is v3-*style*, not v3-compatible: framing, message type
// bytes and the startup/auth exchange follow the PostgreSQL layout, but
// two simplifications are documented deviations — Describe always answers
// NoData (row shapes are not known before execution in this engine), and
// Execute emits its own RowDescription before the data rows so a client
// never needs Describe. Parameters are the engine's named @params; Parse
// carries kind hints per parameter (in first-appearance order) and Bind
// sends text-format values decoded through those hints.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"time"

	"sqlcm/internal/server/errcode"
	"sqlcm/internal/sqltypes"
)

// Protocol constants.
const (
	protoVersion = 196608 // 3.0, as in PostgreSQL
	sslRequest   = 80877103
	cancelReqest = 80877102

	// maxMessageLen bounds one wire message (length prefix included); a
	// peer announcing more is cut off rather than ballooning memory.
	maxMessageLen = 16 << 20
)

// Backend (server→client) message type bytes.
const (
	msgAuth            = 'R'
	msgBackendKeyData  = 'K'
	msgParameterStatus = 'S'
	msgReadyForQuery   = 'Z'
	msgRowDescription  = 'T'
	msgDataRow         = 'D'
	msgCommandComplete = 'C'
	msgErrorResponse   = 'E'
	msgParseComplete   = '1'
	msgBindComplete    = '2'
	msgCloseComplete   = '3'
	msgNoData          = 'n'
	msgEmptyQueryResp  = 'I'
)

// Frontend (client→server) message type bytes.
const (
	msgQuery     = 'Q'
	msgParse     = 'P'
	msgBind      = 'B'
	msgExecute   = 'E'
	msgDescribe  = 'D'
	msgSync      = 'S'
	msgCloseStmt = 'C'
	msgTerminate = 'X'
	msgPassword  = 'p'
)

// Authentication codes carried by msgAuth.
const (
	authOK        = 0
	authCleartext = 3
)

// Transaction-status bytes in ReadyForQuery.
const (
	txIdle   = 'I'
	txInTxn  = 'T'
	txFailed = 'E'
)

// Type oids for RowDescription, mirroring the PostgreSQL values for the
// kinds this engine has.
const (
	oidBool   = 16
	oidInt8   = 20
	oidText   = 25
	oidFloat8 = 701
	oidTstz   = 1184
)

// kindOID maps an engine kind onto its wire oid.
func kindOID(k sqltypes.Kind) int32 {
	switch k {
	case sqltypes.KindInt:
		return oidInt8
	case sqltypes.KindFloat:
		return oidFloat8
	case sqltypes.KindBool:
		return oidBool
	case sqltypes.KindTime:
		return oidTstz
	default:
		return oidText
	}
}

// oidKind maps a wire oid back onto an engine kind (0 and unknown → string).
func oidKind(oid int32) sqltypes.Kind {
	switch oid {
	case oidInt8:
		return sqltypes.KindInt
	case oidFloat8:
		return sqltypes.KindFloat
	case oidBool:
		return sqltypes.KindBool
	case oidTstz:
		return sqltypes.KindTime
	default:
		return sqltypes.KindString
	}
}

// wireTimeFormat renders DATETIME values on the wire with full precision.
const wireTimeFormat = time.RFC3339Nano

// encodeValue renders one value in text format; ok=false marks NULL.
func encodeValue(v sqltypes.Value) (s string, ok bool) {
	if v.IsNull() {
		return "", false
	}
	switch v.Kind() {
	case sqltypes.KindInt:
		return strconv.FormatInt(v.Int(), 10), true
	case sqltypes.KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64), true
	case sqltypes.KindBool:
		if v.Bool() {
			return "t", true
		}
		return "f", true
	case sqltypes.KindTime:
		return v.Time().Format(wireTimeFormat), true
	default:
		return v.Str(), true
	}
}

// decodeValue parses one text-format value into the hinted kind.
func decodeValue(kind sqltypes.Kind, text string) (sqltypes.Value, error) {
	switch kind {
	case sqltypes.KindInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("server: bad int parameter %q", text)
		}
		return sqltypes.NewInt(n), nil
	case sqltypes.KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("server: bad float parameter %q", text)
		}
		return sqltypes.NewFloat(f), nil
	case sqltypes.KindBool:
		switch text {
		case "t", "true", "TRUE":
			return sqltypes.NewBool(true), nil
		case "f", "false", "FALSE":
			return sqltypes.NewBool(false), nil
		}
		return sqltypes.Null, fmt.Errorf("server: bad bool parameter %q", text)
	case sqltypes.KindTime:
		ts, err := time.Parse(wireTimeFormat, text)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("server: bad time parameter %q", text)
		}
		return sqltypes.NewTime(ts), nil
	default:
		return sqltypes.NewString(text), nil
	}
}

// ---------------------------------------------------------------------------
// Message reader
// ---------------------------------------------------------------------------

// protoReader reads framed protocol messages off a connection.
type protoReader struct {
	r *bufio.Reader
}

func newProtoReader(c io.Reader) *protoReader {
	return &protoReader{r: bufio.NewReaderSize(c, 8<<10)}
}

// readMessage reads one typed message: a type byte, an int32 length
// (including itself), and the payload.
func (pr *protoReader) readMessage() (byte, []byte, error) {
	typ, err := pr.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	payload, err := pr.readLenPayload()
	if err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// readStartup reads the untyped startup message (length + payload).
func (pr *protoReader) readStartup() ([]byte, error) {
	return pr.readLenPayload()
}

func (pr *protoReader) readLenPayload() ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(pr.r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int32(binary.BigEndian.Uint32(lenBuf[:]))
	if n < 4 || n > maxMessageLen {
		return nil, fmt.Errorf("server: bad message length %d", n)
	}
	// Read in bounded chunks, growing as bytes actually arrive: a hostile
	// length prefix on a tiny input costs one chunk of allocation, not the
	// full declared size.
	const chunk = 64 << 10
	want := int(n - 4)
	payload := make([]byte, 0, min(want, chunk))
	for len(payload) < want {
		step := min(want-len(payload), chunk)
		off := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(pr.r, payload[off:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// payload is a cursor over one message body.
type payload struct {
	b []byte
}

func (p *payload) remaining() int { return len(p.b) }

func (p *payload) int32() (int32, error) {
	if len(p.b) < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := int32(binary.BigEndian.Uint32(p.b))
	p.b = p.b[4:]
	return v, nil
}

func (p *payload) int16() (int16, error) {
	if len(p.b) < 2 {
		return 0, io.ErrUnexpectedEOF
	}
	v := int16(binary.BigEndian.Uint16(p.b))
	p.b = p.b[2:]
	return v, nil
}

func (p *payload) byte() (byte, error) {
	if len(p.b) < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	v := p.b[0]
	p.b = p.b[1:]
	return v, nil
}

// cstring reads a NUL-terminated string.
func (p *payload) cstring() (string, error) {
	for i, c := range p.b {
		if c == 0 {
			s := string(p.b[:i])
			p.b = p.b[i+1:]
			return s, nil
		}
	}
	return "", io.ErrUnexpectedEOF
}

// lenBytes reads an int32 length then that many bytes; -1 means NULL.
func (p *payload) lenBytes() ([]byte, bool, error) {
	n, err := p.int32()
	if err != nil {
		return nil, false, err
	}
	if n < 0 {
		return nil, false, nil
	}
	if int(n) > len(p.b) {
		return nil, false, io.ErrUnexpectedEOF
	}
	v := p.b[:n]
	p.b = p.b[n:]
	return v, true, nil
}

// ---------------------------------------------------------------------------
// Message writer
// ---------------------------------------------------------------------------

// protoWriter builds and flushes framed protocol messages. Messages are
// buffered; Flush pushes them onto the wire.
type protoWriter struct {
	w     *bufio.Writer
	buf   []byte // current message under construction
	typ   byte
	inMsg bool
}

func newProtoWriter(c io.Writer) *protoWriter {
	return &protoWriter{w: bufio.NewWriterSize(c, 8<<10)}
}

// begin starts a typed message.
func (pw *protoWriter) begin(typ byte) {
	pw.typ = typ
	pw.buf = pw.buf[:0]
	pw.inMsg = true
}

func (pw *protoWriter) putByte(b byte) { pw.buf = append(pw.buf, b) }
func (pw *protoWriter) putInt16(v int16) {
	pw.buf = append(pw.buf, byte(v>>8), byte(v))
}
func (pw *protoWriter) putInt32(v int32) {
	pw.buf = append(pw.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (pw *protoWriter) putString(s string) {
	pw.buf = append(pw.buf, s...)
	pw.buf = append(pw.buf, 0)
}
func (pw *protoWriter) putBytes(b []byte) { pw.buf = append(pw.buf, b...) }

// end frames the message under construction into the output buffer.
func (pw *protoWriter) end() error {
	if !pw.inMsg {
		return fmt.Errorf("server: end without begin")
	}
	pw.inMsg = false
	var hdr [5]byte
	hdr[0] = pw.typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(pw.buf)+4))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(pw.buf)
	return err
}

// flush pushes buffered messages to the connection.
func (pw *protoWriter) flush() error { return pw.w.Flush() }

// writeStartup writes the untyped startup message (client side).
func (pw *protoWriter) writeStartup(params map[string]string) error {
	body := make([]byte, 0, 64)
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], uint32(protoVersion))
	body = append(body, v[:]...)
	for k, val := range params {
		body = append(body, k...)
		body = append(body, 0)
		body = append(body, val...)
		body = append(body, 0)
	}
	body = append(body, 0)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)+4))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(body); err != nil {
		return err
	}
	return pw.w.Flush()
}

// ---------------------------------------------------------------------------
// Error responses
// ---------------------------------------------------------------------------

// WireError is an ErrorResponse decoded from (or destined for) the wire.
type WireError struct {
	Severity string
	Code     string
	Message  string
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("%s (%s): %s", e.Severity, e.Code, e.Message)
}

// writeError frames one ErrorResponse. The code comes from the
// internal/server/errcode table — the single source for the wire
// taxonomy; raw SQLSTATE literals here are analyzer findings.
func (pw *protoWriter) writeError(code errcode.Code, msg string) error {
	pw.begin(msgErrorResponse)
	pw.putByte('S')
	pw.putString("ERROR")
	pw.putByte('C')
	pw.putString(code.SQLSTATE)
	pw.putByte('M')
	pw.putString(msg)
	pw.putByte(0)
	return pw.end()
}

// parseError decodes an ErrorResponse payload.
func parseError(body []byte) *WireError {
	e := &WireError{Severity: "ERROR"}
	p := payload{b: body}
	for {
		f, err := p.byte()
		if err != nil || f == 0 {
			return e
		}
		v, err := p.cstring()
		if err != nil {
			return e
		}
		switch f {
		case 'S':
			e.Severity = v
		case 'C':
			e.Code = v
		case 'M':
			e.Message = v
		}
	}
}
