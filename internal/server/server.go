package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sqlcm/internal/engine"
	"sqlcm/internal/lockcheck"
	"sqlcm/internal/server/errcode"
)

// Config tunes a Server.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:5477"; ":0" picks a
	// free port).
	Addr string
	// MaxConns caps concurrent connections; further clients get a
	// "too many connections" error response at startup. 0 means the
	// default of 2000.
	MaxConns int
	// ReadTimeout bounds how long a connection may sit idle between
	// messages (and each handshake read). 0 means the default of 5m.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush. 0 means the default of 30s.
	WriteTimeout time.Duration
	// DrainTimeout bounds the graceful part of Shutdown: in-flight
	// statements get this long to finish before their connections are
	// force-closed. 0 means the default of 10s.
	DrainTimeout time.Duration
	// AdmissionWait is the accept-queue backpressure window: a
	// connection arriving while all MaxConns slots are taken waits up to
	// this long for a slot before the polite "too many connections"
	// refusal. 0 refuses immediately.
	AdmissionWait time.Duration
	// StatementTimeout bounds each statement's execution; a statement
	// exceeding it is cancelled at the next row-iteration or lock-wait
	// boundary and the client gets a retryable 57014 error plus a
	// Query.Cancelled event with reason timeout. 0 disables.
	StatementTimeout time.Duration
	// Overloaded, when set, is consulted before every statement: true
	// sheds the statement with a retryable 53400 error (and one
	// Query.Cancelled event, reason shed) instead of queueing it behind
	// an overloaded monitor. sqlcm-serve wires it to the event bus's
	// EWMA dispatch-budget state.
	Overloaded func() bool
	// Listener, when set, is served instead of binding Addr — the hook
	// chaos harnesses use to interpose a fault-injecting listener.
	Listener net.Listener
	// Password, when set, arms cleartext-password authentication; empty
	// trusts every client.
	Password string
	// NewSession opens the engine session for one authenticated
	// connection. Required.
	NewSession func(user, app, remoteAddr string) *engine.Session
	// Drain, when set, is called after every connection has ended during
	// Shutdown, with the remaining shutdown budget — the hook the
	// monitoring stack uses to drain its action outbox before the process
	// exits. Returning false reports abandoned work.
	Drain func(timeout time.Duration) bool
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 2000
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Stats is a point-in-time view of the server's counters.
type Stats struct {
	Accepted   int64 // connections accepted (including later-rejected)
	Rejected   int64 // connections refused by the MaxConns limit
	Active     int64 // connections currently open
	Statements int64 // wire statements executed (simple + extended)
	Errors     int64 // error responses sent
	Shed       int64 // statements refused by overload shedding
	Cancelled  int64 // statements cancelled by timeout or drain
}

// Server is the TCP front-end: an accept loop handing each connection a
// goroutine that owns one engine.Session for the connection's lifetime.
type Server struct {
	cfg Config
	lis net.Listener

	// mu protects the live-connection set.
	//sqlcm:lock server.conns
	//sqlcm:guards conns
	mu    lockcheck.Mutex
	conns map[*conn]struct{}

	// slots is the admission semaphore: one token per live connection,
	// capacity MaxConns. Admission takes a token (waiting up to
	// AdmissionWait — the accept-queue backpressure), untrack returns
	// it. The conns map stays the drain-time snapshot source.
	slots chan struct{}

	wg       sync.WaitGroup // connection goroutines
	acceptWG sync.WaitGroup // the accept loop itself
	closing  atomic.Bool
	stopping chan struct{} // closed by Shutdown; aborts admission waits

	accepted   atomic.Int64
	rejected   atomic.Int64
	statements atomic.Int64
	errors     atomic.Int64
	shed       atomic.Int64
	cancelled  atomic.Int64
}

// New builds a server; Start brings up the listener.
func New(cfg Config) (*Server, error) {
	if cfg.NewSession == nil {
		return nil, fmt.Errorf("server: Config.NewSession is required")
	}
	s := &Server{cfg: cfg.withDefaults(), conns: make(map[*conn]struct{})}
	s.slots = make(chan struct{}, s.cfg.MaxConns)
	s.stopping = make(chan struct{})
	s.mu.SetClass("server.conns")
	return s, nil
}

// Start binds the listen address (or adopts Config.Listener) and
// launches the accept loop.
func (s *Server) Start() error {
	if s.cfg.Listener != nil {
		s.lis = s.cfg.Listener
	} else {
		lis, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return err
		}
		s.lis = lis
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return Stats{
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Active:     active,
		Statements: s.statements.Load(),
		Errors:     s.errors.Load(),
		Shed:       s.shed.Load(),
		Cancelled:  s.cancelled.Load(),
	}
}

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal accept error
		}
		s.accepted.Add(1)
		if s.closing.Load() {
			s.refuse(nc, errcode.AdminShutdown, "server is shutting down")
			continue
		}
		c := &conn{srv: s, nc: nc}
		if !s.admit(c) {
			s.rejected.Add(1)
			s.refuse(nc, errcode.TooManyConns, "too many connections")
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(c)
			c.serve()
		}()
	}
}

// refuse answers a connection we will not serve with an error response
// and closes it (best effort; the client may not even read it, so the
// deadline failure mode is just a faster close).
func (s *Server) refuse(nc net.Conn, code errcode.Code, msg string) {
	if err := nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err == nil {
		pw := newProtoWriter(nc)
		pw.writeError(code, msg) //nolint:errcheck
		pw.flush()               //nolint:errcheck
	}
	nc.Close() //nolint:errcheck
}

// admit takes an admission slot for a connection, waiting up to
// AdmissionWait when the server is at MaxConns (the accept-queue
// backpressure window: a burst that merely overshoots the cap briefly is
// absorbed instead of refused). false means the connection must be
// politely rejected. The accept loop blocks while waiting, which is the
// point — backpressure propagates to the kernel accept queue.
func (s *Server) admit(c *conn) bool {
	select {
	case s.slots <- struct{}{}:
	default:
		if s.cfg.AdmissionWait <= 0 {
			return false
		}
		t := time.NewTimer(s.cfg.AdmissionWait)
		defer t.Stop()
		select {
		case s.slots <- struct{}{}:
		case <-t.C:
			return false
		case <-s.stopping:
			return false
		}
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	return true
}

// untrack removes a finished connection and returns its admission slot.
func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	<-s.slots
}

// connSnapshot copies the live-connection set (lock held only for the
// copy; per-connection work happens outside it).
func (s *Server) connSnapshot() []*conn {
	s.mu.Lock()
	out := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	s.mu.Unlock()
	return out
}

// ErrDrainIncomplete reports a Shutdown that had to abandon work: force-
// closed connections or an outbox drain that timed out.
var ErrDrainIncomplete = errors.New("server: shutdown drain incomplete")

// Shutdown stops the server with the outbox drain discipline: stop
// accepting, wake idle connections and let in-flight statements finish
// under the drain deadline, cancel statements that outlive the graceful
// window (reason drain, observable as Query.Cancelled), force-close
// stragglers, then hand the remaining budget to the Drain hook (the
// monitoring outbox). It returns ErrDrainIncomplete (wrapped with
// detail) if anything was abandoned.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s.closing.Swap(true) {
		return nil
	}
	close(s.stopping)
	if timeout <= 0 {
		timeout = s.cfg.DrainTimeout
	}
	deadline := time.Now().Add(timeout)

	// 1. Refuse new connections.
	if s.lis != nil {
		s.lis.Close() //nolint:errcheck
		s.acceptWG.Wait()
	}

	// 2. Begin draining every live connection: each observes the draining
	// flag after its current command (if any) completes; idle connections
	// blocked in a read are woken by an immediate read deadline.
	for _, c := range s.connSnapshot() {
		c.beginDrain()
	}

	// 3. Wait for connection goroutines. Most of the budget is the
	// graceful window; statements still running when it ends are
	// cancelled with reason drain (they fail at their next row-iteration
	// or lock-wait boundary, their clients get a retryable 57014) and
	// given the rest of the budget to unwind. Only connections that
	// survive even that are force-closed.
	grace := timeout / 5
	if grace > time.Second {
		grace = time.Second
	}
	graceful := waitTimeout(&s.wg, time.Until(deadline.Add(-grace)))
	if !graceful {
		// The Cancelled counter is bumped where the statement's failure is
		// mapped onto the wire (execErrCode), not here — a cancel that
		// lands after the statement completed should not count.
		for _, c := range s.connSnapshot() {
			c.cancelForDrain()
		}
		graceful = waitTimeout(&s.wg, time.Until(deadline))
	}
	var forced int
	if !graceful {
		for _, c := range s.connSnapshot() {
			c.nc.Close() //nolint:errcheck
			forced++
		}
		s.wg.Wait()
	}

	// 4. Drain the monitoring outbox with whatever budget remains (at
	// least a second, so a shutdown that spent its budget on connections
	// still flushes quick queues).
	drained := true
	if s.cfg.Drain != nil {
		budget := time.Until(deadline)
		if budget < time.Second {
			budget = time.Second
		}
		drained = s.cfg.Drain(budget)
	}

	switch {
	case forced > 0 && !drained:
		return fmt.Errorf("%w: %d connections force-closed, outbox drain timed out", ErrDrainIncomplete, forced)
	case forced > 0:
		return fmt.Errorf("%w: %d connections force-closed", ErrDrainIncomplete, forced)
	case !drained:
		return fmt.Errorf("%w: outbox drain timed out", ErrDrainIncomplete)
	}
	return nil
}

// waitTimeout waits on a WaitGroup with a deadline.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	if d <= 0 {
		d = time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}
