// Package baseline implements the alternative monitoring solutions SQLCM
// is compared against in §6.2.2 of the paper:
//
//   - Query_logging: every committed query is synchronously written to a
//     reporting table; results are obtained by SQL post-processing
//     (push, no in-server filtering).
//   - PULL: a client repeatedly polls the server's active-query snapshot
//     and keeps the top-k externally (pull, client-side filtering, lossy).
//   - PULL_history: the server keeps a history of all completed queries,
//     erased when the client picks it up; the history buffer competes with
//     the buffer pool for memory (pull, no filtering, lossless).
package baseline

import (
	"sort"
	"sync"
	"time"

	"sqlcm/internal/engine"
)

// TopEntry is one query in a computed top-k result.
type TopEntry struct {
	Text     string
	Duration time.Duration
}

// TopK selects the k entries with the largest durations from a
// text → max-duration map.
func TopK(durations map[string]time.Duration, k int) []TopEntry {
	out := make([]TopEntry, 0, len(durations))
	for text, d := range durations {
		out = append(out, TopEntry{Text: text, Duration: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Text < out[j].Text
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Missed counts how many of the true top-k are absent from got (the
// paper's accuracy metric for the polling approaches).
func Missed(truth, got []TopEntry) int {
	have := make(map[string]bool, len(got))
	for _, e := range got {
		have[e.Text] = true
	}
	miss := 0
	for _, e := range truth {
		if !have[e.Text] {
			miss++
		}
	}
	return miss
}

// ---------------------------------------------------------------------------
// PULL: poll the active-query snapshot
// ---------------------------------------------------------------------------

// Puller polls Engine.ActiveQueries at a fixed interval and tracks the
// maximum observed elapsed time per query text. Queries that start and
// finish between two polls are never observed — the paper's accuracy loss.
type Puller struct {
	eng      *engine.Engine
	interval time.Duration

	// mu protects the observation map.
	//sqlcm:lock baseline.puller
	//sqlcm:guards observed, polls
	mu       sync.Mutex
	observed map[string]time.Duration
	polls    int64

	stop chan struct{}
	done chan struct{}
}

// NewPuller creates a poller with the given interval.
func NewPuller(eng *engine.Engine, interval time.Duration) *Puller {
	return &Puller{
		eng:      eng,
		interval: interval,
		observed: make(map[string]time.Duration),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the polling loop.
func (p *Puller) Start() {
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				p.poll()
			}
		}
	}()
}

func (p *Puller) poll() {
	snaps := p.eng.ActiveQueries()
	p.mu.Lock()
	p.polls++
	for _, s := range snaps {
		if s.Elapsed > p.observed[s.Text] {
			p.observed[s.Text] = s.Elapsed
		}
	}
	p.mu.Unlock()
}

// Stop halts polling (taking one final sample first, as a real monitoring
// client would).
func (p *Puller) Stop() {
	p.poll()
	close(p.stop)
	<-p.done
}

// ResetObservations clears everything observed so far (used to delimit an
// accuracy measurement window).
func (p *Puller) ResetObservations() {
	p.mu.Lock()
	p.observed = make(map[string]time.Duration)
	p.mu.Unlock()
}

// Polls returns the number of snapshots taken.
func (p *Puller) Polls() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.polls
}

// TopK returns the client-side top-k over everything observed.
func (p *Puller) TopK(k int) []TopEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return TopK(p.observed, k)
}

// ---------------------------------------------------------------------------
// PULL_history: server-retained history drained by the client
// ---------------------------------------------------------------------------

// historyEntry is one completed query in the server-side history.
type historyEntry struct {
	text     string
	duration time.Duration
}

// HistoryRecorder implements engine.Hooks: it appends every completed
// query to an in-server history buffer whose memory is charged against the
// buffer pool (degrading the page cache, as the paper observes for
// infrequent pick-ups), and lets a client drain it periodically.
type HistoryRecorder struct {
	engine.NopHooks
	eng *engine.Engine

	// mu protects the history buffer.
	//sqlcm:lock baseline.history
	//sqlcm:guards history, charged, observed, maxBytes
	mu      sync.Mutex
	history []historyEntry
	charged int64

	observed map[string]time.Duration // drained results (client side)
	maxBytes int64                    // high-water mark of history memory
}

// entryBytes approximates the in-server footprint of one history entry.
const entryBytes = 64

// NewHistoryRecorder creates the recorder. Install it with eng.SetHooks.
func NewHistoryRecorder(eng *engine.Engine) *HistoryRecorder {
	return &HistoryRecorder{eng: eng, observed: make(map[string]time.Duration)}
}

// QueryCommit implements engine.Hooks.
func (h *HistoryRecorder) QueryCommit(q *engine.QueryInfo, dur time.Duration) {
	h.mu.Lock()
	h.history = append(h.history, historyEntry{text: q.Text, duration: dur})
	charge := int64(entryBytes + len(q.Text))
	h.charged += charge
	if h.charged > h.maxBytes {
		h.maxBytes = h.charged
	}
	h.mu.Unlock()
	h.eng.Pool().ReserveBytes(charge)
}

// Drain moves the server-side history into the client-side observation
// map, releasing the buffer-pool reservation — the "picked up by the
// outside monitoring application" step.
func (h *HistoryRecorder) Drain() int {
	h.mu.Lock()
	batch := h.history
	h.history = nil
	charged := h.charged
	h.charged = 0
	for _, e := range batch {
		if e.duration > h.observed[e.text] {
			h.observed[e.text] = e.duration
		}
	}
	h.mu.Unlock()
	h.eng.Pool().ReserveBytes(-charged)
	return len(batch)
}

// Reset drains and discards all observations (used to delimit an accuracy
// measurement window).
func (h *HistoryRecorder) Reset() {
	h.Drain()
	h.mu.Lock()
	h.observed = make(map[string]time.Duration)
	h.mu.Unlock()
}

// MaxHistoryBytes reports the history buffer's high-water mark.
func (h *HistoryRecorder) MaxHistoryBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxBytes
}

// TopK returns the exact top-k (after a final Drain).
func (h *HistoryRecorder) TopK(k int) []TopEntry {
	h.Drain()
	h.mu.Lock()
	defer h.mu.Unlock()
	return TopK(h.observed, k)
}

// HistoryPoller drains a HistoryRecorder at a fixed interval.
type HistoryPoller struct {
	rec      *HistoryRecorder
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// NewHistoryPoller creates a poller over rec.
func NewHistoryPoller(rec *HistoryRecorder, interval time.Duration) *HistoryPoller {
	return &HistoryPoller{
		rec:      rec,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the drain loop.
func (p *HistoryPoller) Start() {
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				p.rec.Drain()
			}
		}
	}()
}

// Stop halts draining.
func (p *HistoryPoller) Stop() {
	close(p.stop)
	<-p.done
}
