package baseline

import (
	"time"

	"sqlcm/internal/catalog"
	"sqlcm/internal/engine"
	"sqlcm/internal/sqltypes"
)

// QueryLogger implements the Query_logging baseline: every committed query
// is synchronously written to a reporting table inside the server (push
// without filtering, like event logging), and the final top-k is computed
// by a SQL query over the table.
type QueryLogger struct {
	engine.NopHooks
	eng   *engine.Engine
	table string
	// Sync forces dirty pages to disk after every logged query, modelling
	// the paper's "we force synchronous writes" setup for this baseline.
	Sync bool
}

// NewQueryLogger creates the reporting table and returns the logger.
// Install it with eng.SetHooks.
func NewQueryLogger(eng *engine.Engine, table string) (*QueryLogger, error) {
	err := eng.CreateTable(table, []catalog.Column{
		{Name: "query_text", Type: sqltypes.KindString},
		{Name: "duration", Type: sqltypes.KindFloat},
		{Name: "logged_at", Type: sqltypes.KindTime},
	})
	if err != nil {
		return nil, err
	}
	return &QueryLogger{eng: eng, table: table}, nil
}

// QueryCommit implements engine.Hooks: the synchronous write the paper
// forces for this baseline ("monitoring and reporting is not integrated
// ... we force synchronous writes").
func (l *QueryLogger) QueryCommit(q *engine.QueryInfo, dur time.Duration) {
	_ = l.eng.InsertRowDirect(l.table, []sqltypes.Value{
		sqltypes.NewString(q.Text),
		sqltypes.NewFloat(dur.Seconds()),
		sqltypes.NewTime(time.Now()),
	})
	if l.Sync {
		_ = l.eng.Pool().FlushAll()
	}
}

// TopK computes the final result by SQL post-processing over the
// reporting table.
func (l *QueryLogger) TopK(k int) ([]TopEntry, error) {
	sess := l.eng.NewSession("monitor", "query_logging")
	res, err := sess.Exec(
		"SELECT query_text, MAX(duration) AS d FROM "+l.table+
			" GROUP BY query_text ORDER BY d DESC LIMIT "+itoa(k), nil)
	if err != nil {
		return nil, err
	}
	out := make([]TopEntry, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, TopEntry{
			Text:     r[0].Str(),
			Duration: time.Duration(r[1].Float() * float64(time.Second)),
		})
	}
	return out, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
