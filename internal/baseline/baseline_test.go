package baseline

import (
	"fmt"
	"testing"
	"time"

	"sqlcm/internal/engine"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.Open(engine.Config{PoolPages: 256, LockTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func seed(t *testing.T, eng *engine.Engine) {
	t.Helper()
	sess := eng.NewSession("seed", "t")
	if _, err := sess.Exec("CREATE TABLE data (id INT PRIMARY KEY, v FLOAT)", nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 500; i++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO data VALUES (%d, %d.5)", i, i), nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTopKAndMissed(t *testing.T) {
	durs := map[string]time.Duration{
		"a": 5 * time.Millisecond,
		"b": 50 * time.Millisecond,
		"c": 500 * time.Millisecond,
		"d": 1 * time.Millisecond,
	}
	top := TopK(durs, 2)
	if len(top) != 2 || top[0].Text != "c" || top[1].Text != "b" {
		t.Fatalf("topk: %+v", top)
	}
	truth := []TopEntry{{Text: "c"}, {Text: "b"}, {Text: "x"}}
	if got := Missed(truth, top); got != 1 {
		t.Fatalf("missed: %d", got)
	}
	if got := Missed(nil, top); got != 0 {
		t.Fatalf("missed of empty truth: %d", got)
	}
}

func TestQueryLoggerRecordsAndRanks(t *testing.T) {
	eng := newEngine(t)
	seed(t, eng)
	logger, err := NewQueryLogger(eng, "query_log")
	if err != nil {
		t.Fatal(err)
	}
	eng.SetHooks(logger)
	sess := eng.NewSession("u", "a")
	for i := 1; i <= 20; i++ {
		if _, err := sess.Exec(fmt.Sprintf("SELECT v FROM data WHERE id = %d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// One obviously more expensive query.
	if _, err := sess.Exec("SELECT COUNT(*), SUM(v) FROM data", nil); err != nil {
		t.Fatal(err)
	}
	eng.SetHooks(nil)
	rows, err := eng.ReadTableDirect("query_log")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("logged rows: %d", len(rows))
	}
	top, err := logger.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("topk: %d", len(top))
	}
}

func TestPullerObservesLongRunningOnly(t *testing.T) {
	eng := newEngine(t)
	seed(t, eng)
	p := NewPuller(eng, 5*time.Millisecond)
	p.Start()

	// A short query between polls is likely missed; a blocked (long)
	// query is observed. MVCC reads never block, so the parked statement
	// is a second writer waiting on the first writer's X lock.
	w := eng.NewSession("writer", "a")
	if _, err := w.Exec("BEGIN", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("UPDATE data SET v = 0 WHERE id = 1", nil); err != nil {
		t.Fatal(err)
	}
	waiter := eng.NewSession("waiter", "a")
	done := make(chan struct{})
	go func() {
		waiter.Exec("UPDATE data SET v = 2 WHERE id = 2", nil) //nolint:errcheck
		close(done)
	}()
	time.Sleep(60 * time.Millisecond)
	if _, err := w.Exec("COMMIT", nil); err != nil {
		t.Fatal(err)
	}
	<-done
	p.Stop()
	if p.Polls() < 5 {
		t.Fatalf("polls: %d", p.Polls())
	}
	top := p.TopK(10)
	found := false
	for _, e := range top {
		if e.Text == "UPDATE data SET v = 2 WHERE id = 2" && e.Duration > 30*time.Millisecond {
			found = true
		}
	}
	if !found {
		t.Fatalf("long query not observed: %+v", top)
	}
}

func TestHistoryRecorderExactAndBounded(t *testing.T) {
	eng := newEngine(t)
	seed(t, eng)
	rec := NewHistoryRecorder(eng)
	eng.SetHooks(rec)
	sess := eng.NewSession("u", "a")
	for i := 1; i <= 30; i++ {
		if _, err := sess.Exec(fmt.Sprintf("SELECT v FROM data WHERE id = %d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.SetHooks(nil)
	if rec.MaxHistoryBytes() == 0 {
		t.Fatal("no history memory charged")
	}
	n := rec.Drain()
	if n != 30 {
		t.Fatalf("drained: %d", n)
	}
	if rec.Drain() != 0 {
		t.Fatal("double drain returned rows")
	}
	top := rec.TopK(10)
	if len(top) == 0 {
		t.Fatal("no observations after drain")
	}
	// Reservation is fully released after drain.
	eng.Pool().ReserveBytes(0) // no-op; just ensure no panic
}

func TestHistoryPollerDrains(t *testing.T) {
	eng := newEngine(t)
	seed(t, eng)
	rec := NewHistoryRecorder(eng)
	eng.SetHooks(rec)
	hp := NewHistoryPoller(rec, 10*time.Millisecond)
	hp.Start()
	sess := eng.NewSession("u", "a")
	for i := 1; i <= 20; i++ {
		if _, err := sess.Exec(fmt.Sprintf("SELECT v FROM data WHERE id = %d", i), nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	hp.Stop()
	eng.SetHooks(nil)
	top := rec.TopK(25)
	if len(top) != 20 {
		t.Fatalf("history observed %d distinct queries, want 20", len(top))
	}
}
