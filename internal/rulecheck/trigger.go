package rulecheck

import (
	"fmt"
	"sort"
	"strings"

	"sqlcm/internal/monitor"
	"sqlcm/internal/rules"
)

// Rule-trigger graph analysis. Two action kinds raise further monitored
// events and therefore add edges from the acting rule to every
// subscriber of the raised event:
//
//   - Set(timer, period, n) with n ≠ 0 arms a timer whose alarms
//     dispatch Timer.Alarm from a background goroutine. These edges are
//     asynchronous: a cycle through them is a self-sustaining feedback
//     loop (rules re-arming timers forever), worth a warning but
//     bounded in stack depth.
//   - Insert(LAT) into a size-bounded LAT can evict a row, and the
//     engine dispatches LATRow.Evicted re-entrantly on the inserting
//     thread. These edges are synchronous: a cycle means potentially
//     unbounded recursion on a query thread (an eviction rule whose
//     insert evicts again), and even an acyclic chain deepens the
//     thread's stack by its length.
//
// The analysis reports synchronous cycles as errors, asynchronous
// cycles as warnings, and synchronous chains deeper than the set's
// nesting bound (MaxTriggerDepth) as warnings.

// triggerEdge is one edge of the rule-trigger graph.
type triggerEdge struct {
	from, to int  // rule indices in Set.Rules
	sync     bool // true for LAT-eviction edges, false for timer edges
	via      string
}

// checkTriggers builds the trigger graph and reports cycles and
// excessive synchronous nesting depth.
func (c *checker) checkTriggers() {
	edges := c.triggerEdges()
	if len(edges) == 0 {
		return
	}
	maxDepth := c.set.MaxTriggerDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxTriggerDepth
	}

	// Adjacency, split by edge kind.
	n := len(c.set.Rules)
	syncAdj := make([][]triggerEdge, n)
	allAdj := make([][]triggerEdge, n)
	for _, e := range edges {
		allAdj[e.from] = append(allAdj[e.from], e)
		if e.sync {
			syncAdj[e.from] = append(syncAdj[e.from], e)
		}
	}

	// Synchronous cycles: unbounded same-thread recursion.
	if cyc := findCycle(n, syncAdj); cyc != nil {
		c.report(Diagnostic{Rule: c.set.Rules[cyc[0]].Name, Analysis: "trigger", Severity: Error, Pos: -1,
			Message: "synchronous trigger cycle (LAT eviction re-dispatches on the inserting thread): " + c.describeCycle(cyc, syncAdj)})
	} else {
		// Acyclic: bound the deepest synchronous chain.
		depth, path := longestChain(n, syncAdj)
		if depth > maxDepth {
			c.report(Diagnostic{Rule: c.set.Rules[path[0]].Name, Analysis: "trigger", Severity: Warning, Pos: -1,
				Message: fmt.Sprintf("synchronous trigger chain of depth %d exceeds the nesting bound %d: %s",
					depth, maxDepth, c.describePath(path))})
		}
	}

	// Mixed/asynchronous cycles: self-sustaining feedback loops.
	if cyc := findCycle(n, allAdj); cyc != nil && !cycleAllSync(cyc, allAdj) {
		c.report(Diagnostic{Rule: c.set.Rules[cyc[0]].Name, Analysis: "trigger", Severity: Warning, Pos: -1,
			Message: "rule-trigger cycle through timer alarms (self-sustaining feedback loop): " + c.describeCycle(cyc, allAdj)})
	}
}

// triggerEdges derives the graph's edges from the rules' actions.
func (c *checker) triggerEdges() []triggerEdge {
	// Subscribers per event class.
	var timerRules, evictRules []int
	for i := range c.set.Rules {
		switch c.set.Rules[i].Event {
		case monitor.EvTimerAlarm:
			timerRules = append(timerRules, i)
		case monitor.EvLATRowEvicted:
			evictRules = append(evictRules, i)
		}
	}
	var edges []triggerEdge
	for i := range c.set.Rules {
		for _, a := range c.set.Rules[i].Actions {
			switch x := a.(type) {
			case *rules.SetTimerAction:
				if x.Count == 0 {
					continue // disarms: raises nothing
				}
				for _, j := range timerRules {
					edges = append(edges, triggerEdge{from: i, to: j, sync: false,
						via: "Set(" + x.Timer + ")"})
				}
			case *rules.InsertAction:
				spec, ok := c.lats[x.LAT]
				if !ok || (spec.MaxRows == 0 && spec.MaxBytes == 0) {
					continue // unbounded LATs never evict
				}
				for _, j := range evictRules {
					edges = append(edges, triggerEdge{from: i, to: j, sync: true,
						via: "Insert(" + x.LAT + ")"})
				}
			}
		}
	}
	return edges
}

// findCycle returns one cycle (as a node sequence, first node repeated
// implicitly) or nil. Deterministic: DFS in index order.
func findCycle(n int, adj [][]triggerEdge) []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		for _, e := range adj[u] {
			v := e.to
			if color[v] == grey {
				// Unwind u → … → v.
				cycle = []int{v}
				for w := u; w != v; w = parent[w] {
					cycle = append(cycle, w)
				}
				// Reverse into forward order starting at v.
				for l, r := 1, len(cycle)-1; l < r; l, r = l+1, r-1 {
					cycle[l], cycle[r] = cycle[r], cycle[l]
				}
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := 0; i < n; i++ {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}

// cycleAllSync reports whether every consecutive hop of the cycle can be
// made over synchronous edges (then the sync-cycle error already covers
// it).
func cycleAllSync(cyc []int, adj [][]triggerEdge) bool {
	for i := range cyc {
		u, v := cyc[i], cyc[(i+1)%len(cyc)]
		syncHop := false
		for _, e := range adj[u] {
			if e.to == v && e.sync {
				syncHop = true
				break
			}
		}
		if !syncHop {
			return false
		}
	}
	return true
}

// longestChain returns the longest path length (in edges) of an acyclic
// graph and one maximal path.
func longestChain(n int, adj [][]triggerEdge) (int, []int) {
	memo := make([]int, n)  // longest chain starting at node, -1 = unknown
	next := make([]int, n)  // successor on that chain
	for i := range memo {
		memo[i], next[i] = -1, -1
	}
	var dfs func(u int) int
	dfs = func(u int) int {
		if memo[u] >= 0 {
			return memo[u]
		}
		memo[u] = 0
		best := 0
		for _, e := range adj[u] {
			if d := dfs(e.to) + 1; d > best {
				best = d
				next[u] = e.to
			}
		}
		memo[u] = best
		return best
	}
	bestDepth, bestStart := 0, -1
	for i := 0; i < n; i++ {
		if d := dfs(i); d > bestDepth {
			bestDepth, bestStart = d, i
		}
	}
	if bestStart < 0 {
		return 0, nil
	}
	var path []int
	for u := bestStart; u >= 0; u = next[u] {
		path = append(path, u)
	}
	return bestDepth, path
}

func (c *checker) describeCycle(cyc []int, adj [][]triggerEdge) string {
	names := make([]string, 0, len(cyc)+1)
	for _, i := range cyc {
		names = append(names, fmt.Sprintf("%q", c.set.Rules[i].Name))
	}
	names = append(names, fmt.Sprintf("%q", c.set.Rules[cyc[0]].Name))
	return strings.Join(names, " → ")
}

func (c *checker) describePath(path []int) string {
	names := make([]string, 0, len(path))
	for _, i := range path {
		names = append(names, fmt.Sprintf("%q", c.set.Rules[i].Name))
	}
	return strings.Join(names, " → ")
}

// checkShadow finds duplicate and shadowed rules: rules on the same
// event with the same normalized condition all fire on the same events,
// so identical actions mean a pure duplicate (double-firing side
// effects) and differing actions likely mean one rule was meant to
// replace the other.
func (c *checker) checkShadow() {
	type key struct {
		event monitor.Event
		cond  string
	}
	groups := make(map[key][]int)
	var order []key
	for i := range c.set.Rules {
		r := &c.set.Rules[i]
		k := key{event: r.Event, cond: normalizedCond(r)}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	sort.SliceStable(order, func(a, b int) bool { return groups[order[a]][0] < groups[order[b]][0] })
	for _, k := range order {
		idxs := groups[k]
		if len(idxs) < 2 {
			continue
		}
		first := &c.set.Rules[idxs[0]]
		for _, i := range idxs[1:] {
			r := &c.set.Rules[i]
			if actionsSignature(r.Actions) == actionsSignature(first.Actions) {
				c.report(Diagnostic{Rule: r.Name, Analysis: "shadow", Severity: Error, Pos: -1,
					Message: fmt.Sprintf("duplicate of rule %q (same event, condition and actions): every firing runs the actions twice", first.Name)})
			} else {
				c.report(Diagnostic{Rule: r.Name, Analysis: "shadow", Severity: Warning, Pos: -1,
					Message: fmt.Sprintf("shadows rule %q: same event %s and condition, different actions — both fire on every match", first.Name, r.Event)})
			}
		}
	}
}

// normalizedCond renders a rule's condition canonically (the parser's
// String() fully parenthesizes, so textual equality is structural
// equality up to literal spelling).
func normalizedCond(r *RuleDef) string {
	if r.Cond == nil {
		return ""
	}
	return r.Cond.String()
}

// actionsSignature renders an action list canonically via Describe.
func actionsSignature(actions []rules.Action) string {
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.Describe()
	}
	return strings.Join(parts, "; ")
}
