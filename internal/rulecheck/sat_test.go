package rulecheck

import (
	"testing"

	"sqlcm/internal/monitor"
	"sqlcm/internal/rules"
)

func mustParse(t *testing.T, src string) *RuleDef {
	e, err := rules.ParseCondition(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return &RuleDef{Name: "r", Event: monitor.EvQueryCommit, CondSrc: src, Cond: e,
		Actions: []rules.Action{&rules.FuncAction{Name: "f", Fn: func(rules.Env, *rules.Ctx) error { return nil }}}}
}

func TestSatAnalysis(t *testing.T) {
	cases := []struct {
		src       string
		dead      bool
		alwaysTru bool
	}{
		{"Duration > 10 AND Duration < 5", true, false},
		{"Duration > 10 AND Duration < 20", false, false},
		{"Duration > 5 OR Duration < 10", false, false}, // null makes it false; not always-true
		{"1 = 1", false, true},
		{"1 = 2", true, false},
		{"NOT (Duration > 5) AND NOT (Duration <= 5)", false, false}, // satisfiable by NULL
		{"Duration = 5 AND Duration != 5", true, false},
		{"Duration IS NULL AND Duration > 3", true, false},
		{"Duration IS NULL OR Duration IS NOT NULL", false, true},
		{"Time_Blocked >= 0 AND Time_Blocked <= -1", true, false},
		{"Duration > 2.5 AND Duration < 2.6", false, false}, // float: non-empty open interval
		{"Times_Blocked > 2 AND Times_Blocked < 3", true, false}, // int tightening
		{"User = 'alice' AND User != 'alice'", true, false},
		{"User = 'alice' AND User = 'bob'", true, false},
		{"Duration > 0.25", false, false},
	}
	for _, tc := range cases {
		set := &Set{Rules: []RuleDef{*mustParse(t, tc.src)}}
		diags := Check(set)
		var dead, always bool
		for _, d := range diags {
			if d.Analysis == "sat" && d.Severity == Error {
				dead = true
			}
			if d.Analysis == "sat" && d.Severity == Warning {
				always = true
			}
		}
		if dead != tc.dead || always != tc.alwaysTru {
			t.Errorf("%q: dead=%v always=%v (want %v %v) diags=%v", tc.src, dead, always, tc.dead, tc.alwaysTru, diags)
		}
	}
}
