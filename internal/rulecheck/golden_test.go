package rulecheck

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGolden checks every seeded-defect fixture against its .golden file:
// the full, ordered diagnostic output of parsing plus Check. Regenerate
// with: go test ./internal/rulecheck -run TestGolden -update
func TestGolden(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.rules"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures in testdata/")
	}
	for _, fixture := range fixtures {
		fixture := fixture
		t.Run(filepath.Base(fixture), func(t *testing.T) {
			src, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatal(err)
			}
			var buf strings.Builder
			set, diags, err := ParseSet(string(src))
			if err != nil {
				fmt.Fprintf(&buf, "parse error: %v\n", err)
			} else {
				diags = append(diags, Check(set)...)
				for _, d := range diags {
					fmt.Fprintf(&buf, "%s\n", d)
				}
			}
			got := buf.String()

			golden := strings.TrimSuffix(fixture, ".rules") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if got == "" {
				t.Error("fixture produced no diagnostics; every testdata fixture must seed a defect")
			}
		})
	}
}
