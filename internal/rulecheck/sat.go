package rulecheck

import (
	"math"

	"sqlcm/internal/monitor"
	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
)

// Interval-based satisfiability over rule conditions. The analysis is an
// over-approximation aligned with the runtime's truthiness semantics: a
// condition "holds" only when it evaluates non-NULL and truthy; NULL
// attributes, missing LAT rows and evaluation errors all make the rule
// not fire. sat(e, want) returns a set of abstract worlds — per-variable
// constraint conjunctions — covering every concrete state in which e has
// truth value `want`. If the set is empty, that truth value is
// unreachable:
//
//	sat(cond, true) empty  → the rule can never fire (dead rule, Error)
//	sat(cond, false) empty → the condition is always true (Warning)
//
// Soundness notes, matching internal/rules/compile.go and
// sqltypes.Compare:
//
//   - Negation is NOT classical: NOT(x > 5) is true when x is NULL, so a
//     negated comparison contributes "inverted interval OR null", never
//     just the inverted interval. Duration > 10 AND Duration < 5 is dead;
//     NOT(Duration > 5) AND NOT(Duration <= 5) is satisfied by NULL.
//   - Compare orders mismatched kinds by kind tag, so a comparison whose
//     operand kinds differ statically is constant-for-kind (modulo NULL);
//     the analysis folds it instead of constraining the variable.
//   - Interval constraints attach only when the variable's static kind is
//     numeric and the bound is a numeric literal; INT-kind variables get
//     integer bound tightening (x > 10 ⇒ x ≥ 11).
//
// World count is capped; past the cap the analysis returns TOP (an
// unconstrained world) and claims nothing.

// maxWorlds caps the disjunct fan-out of sat(); beyond it the analysis
// degrades to TOP rather than claim anything.
const maxWorlds = 128

// varConstraint abstracts one variable's possible values: a value-set
// (numeric interval minus exclusions, or a string equality/exclusion
// set) plus whether NULL (or a missing LAT row) is allowed.
type varConstraint struct {
	kind sqltypes.Kind // KindInt/KindFloat/KindBool (numeric) or KindString

	// Numeric interval [lo, hi]; loOpen/hiOpen mark strict bounds.
	lo, hi         float64
	loOpen, hiOpen bool
	// excl holds point exclusions (x != c).
	excl []float64

	// String constraints: eq non-nil means the value must be one of eq;
	// strExcl lists forbidden values.
	eq      map[string]bool
	strExcl map[string]bool

	// valueSetEmpty marks a constraint whose value set is empty by
	// construction (IS NULL): only NULL satisfies it.
	valueSetEmpty bool

	// allowNull: the variable may be NULL / missing and still satisfy
	// the constraint.
	allowNull bool
}

func unconstrainedNum(kind sqltypes.Kind) *varConstraint {
	return &varConstraint{kind: kind, lo: math.Inf(-1), hi: math.Inf(1), allowNull: true}
}

// world is a conjunction of per-variable constraints.
type world map[string]*varConstraint

// worldList is a disjunction of worlds. nil/empty = unsatisfiable; the
// single unconstrained world is TOP.
type worldList []world

var top = worldList{world{}}

// consistent reports whether the constraint admits at least one value.
func (vc *varConstraint) consistent() bool {
	if vc.allowNull {
		return true
	}
	if vc.valueSetEmpty {
		return false
	}
	if vc.kind == sqltypes.KindString {
		if vc.eq != nil {
			for v := range vc.eq {
				if vc.strExcl == nil || !vc.strExcl[v] {
					return true
				}
			}
			return false
		}
		return true // co-finite string set is never empty
	}
	// Numeric interval.
	lo, hi := vc.lo, vc.hi
	loOpen, hiOpen := vc.loOpen, vc.hiOpen
	if vc.kind == sqltypes.KindInt {
		// Tighten to integral bounds.
		lo, hi, loOpen, hiOpen = tightenInt(lo, hi, loOpen, hiOpen)
	}
	if lo > hi {
		return false
	}
	if lo == hi {
		if loOpen || hiOpen {
			return false
		}
		for _, e := range vc.excl {
			if e == lo {
				return false
			}
		}
		return true
	}
	if vc.kind == sqltypes.KindInt && !math.IsInf(lo, -1) && !math.IsInf(hi, 1) {
		// Small integer ranges: check the exclusions don't cover it.
		n := hi - lo + 1
		if n <= float64(len(vc.excl)) {
			covered := 0
			for x := lo; x <= hi; x++ {
				for _, e := range vc.excl {
					if e == x {
						covered++
						break
					}
				}
			}
			if float64(covered) >= n {
				return false
			}
		}
	}
	return true
}

// tightenInt converts open/fractional bounds to closed integral bounds.
func tightenInt(lo, hi float64, loOpen, hiOpen bool) (float64, float64, bool, bool) {
	if !math.IsInf(lo, -1) {
		if loOpen {
			lo = math.Floor(lo) + 1
		} else {
			lo = math.Ceil(lo)
		}
	}
	if !math.IsInf(hi, 1) {
		if hiOpen {
			hi = math.Ceil(hi) - 1
		} else {
			hi = math.Floor(hi)
		}
	}
	return lo, hi, false, false
}

// merge conjoins two constraints on the same variable. Returns nil when
// the conjunction is unsatisfiable.
func (vc *varConstraint) merge(o *varConstraint) *varConstraint {
	out := &varConstraint{
		kind:          vc.kind,
		lo:            math.Max(vc.lo, o.lo),
		hi:            math.Min(vc.hi, o.hi),
		valueSetEmpty: vc.valueSetEmpty || o.valueSetEmpty,
		allowNull:     vc.allowNull && o.allowNull,
	}
	switch {
	case out.lo == vc.lo && out.lo == o.lo:
		out.loOpen = vc.loOpen || o.loOpen
	case out.lo == vc.lo:
		out.loOpen = vc.loOpen
	default:
		out.loOpen = o.loOpen
	}
	switch {
	case out.hi == vc.hi && out.hi == o.hi:
		out.hiOpen = vc.hiOpen || o.hiOpen
	case out.hi == vc.hi:
		out.hiOpen = vc.hiOpen
	default:
		out.hiOpen = o.hiOpen
	}
	out.excl = append(append([]float64(nil), vc.excl...), o.excl...)
	switch {
	case vc.eq != nil && o.eq != nil:
		out.eq = map[string]bool{}
		for v := range vc.eq {
			if o.eq[v] {
				out.eq[v] = true
			}
		}
		if len(out.eq) == 0 {
			out.valueSetEmpty = true
		}
	case vc.eq != nil:
		out.eq = vc.eq
	case o.eq != nil:
		out.eq = o.eq
	}
	if vc.strExcl != nil || o.strExcl != nil {
		out.strExcl = map[string]bool{}
		for v := range vc.strExcl {
			out.strExcl[v] = true
		}
		for v := range o.strExcl {
			out.strExcl[v] = true
		}
	}
	if !out.consistent() {
		return nil
	}
	return out
}

// mergeWorlds conjoins two worlds; nil means contradiction.
func mergeWorlds(a, b world) world {
	out := make(world, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; ok {
			m := prev.merge(v)
			if m == nil {
				return nil
			}
			out[k] = m
		} else {
			out[k] = v
		}
	}
	return out
}

// cross conjoins two world lists (AND), dropping contradictions.
func cross(a, b worldList) worldList {
	if len(a)*len(b) > maxWorlds {
		return top
	}
	var out worldList
	for _, wa := range a {
		for _, wb := range b {
			if w := mergeWorlds(wa, wb); w != nil {
				out = append(out, w)
			}
		}
	}
	return out
}

// union disjoins two world lists (OR).
func union(a, b worldList) worldList {
	out := append(append(worldList{}, a...), b...)
	if len(out) > maxWorlds {
		return top
	}
	return out
}

// satChecker runs the analysis for one rule.
type satChecker struct {
	c *checker
	r *RuleDef
}

// checkSat analyses one rule's condition for dead and always-true cases.
func (c *checker) checkSat(r *RuleDef) {
	if r.Cond == nil {
		return
	}
	s := &satChecker{c: c, r: r}
	if len(s.sat(r.Cond, true)) == 0 {
		c.report(Diagnostic{Rule: r.Name, Analysis: "sat", Severity: Error, Pos: 0,
			Message: "condition is unsatisfiable: the rule can never fire"})
		return
	}
	if len(s.sat(r.Cond, false)) == 0 {
		c.report(Diagnostic{Rule: r.Name, Analysis: "sat", Severity: Warning, Pos: 0,
			Message: "condition is always true: the rule fires on every event (drop the condition if intended)"})
	}
}

// sat returns the worlds in which e has truth value want ("truthy" per
// the runtime: non-NULL, non-missing and truthy). The result
// over-approximates; an empty list is a proof of unreachability.
func (s *satChecker) sat(e sqlparser.Expr, want bool) worldList {
	switch x := e.(type) {
	case *sqlparser.Logic:
		and := x.Op == sqlparser.LogicAnd
		if and == want {
			// AND-true / OR-false: both operands must have value `want`.
			return cross(s.sat(x.Left, want), s.sat(x.Right, want))
		}
		// AND-false / OR-true: either operand suffices.
		return union(s.sat(x.Left, want), s.sat(x.Right, want))

	case *sqlparser.Not:
		// NOT e is truthy ⟺ e is not truthy (NULL flips to true).
		return s.sat(x.Expr, !want)

	case *sqlparser.Comparison:
		return s.satComparison(x, want)

	case *sqlparser.IsNull:
		return s.satIsNull(x, want)

	case *sqlparser.Literal:
		// Constant: truthy(lit) is fixed (strings/times are never truthy).
		if litTruthy(x.Val) == want {
			return top
		}
		return nil

	case *sqlparser.ColumnRef:
		// Bare reference as a boolean operand.
		return s.satRefTruthy(x, want)

	default:
		// Arithmetic or unsupported shapes as boolean operands: fold if
		// constant, otherwise claim nothing.
		if v, ok := foldConst(e); ok {
			if litTruthy(v) == want {
				return top
			}
			return nil
		}
		return top
	}
}

func litTruthy(v sqltypes.Value) bool {
	switch v.Kind() {
	case sqltypes.KindBool, sqltypes.KindInt:
		return v.Int() != 0
	case sqltypes.KindFloat:
		return v.Float() != 0
	default:
		return false
	}
}

// foldConst evaluates literal-only subtrees (arithmetic, negation) to a
// constant value.
func foldConst(e sqlparser.Expr) (sqltypes.Value, bool) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Val, true
	case *sqlparser.Neg:
		v, ok := foldConst(x.Expr)
		if !ok {
			return sqltypes.Null, false
		}
		out, err := sqltypes.Negate(v)
		if err != nil {
			return sqltypes.Null, false
		}
		return out, true
	case *sqlparser.Arith:
		l, ok := foldConst(x.Left)
		if !ok {
			return sqltypes.Null, false
		}
		r, ok := foldConst(x.Right)
		if !ok {
			return sqltypes.Null, false
		}
		out, err := sqltypes.Arith(x.Op, l, r)
		if err != nil {
			return sqltypes.Null, false
		}
		return out, true
	default:
		return sqltypes.Null, false
	}
}

// refKindQuiet resolves a reference's static kind without emitting
// diagnostics (checkTypes owns the reporting).
func (s *satChecker) refKindQuiet(ref *sqlparser.ColumnRef) inferredKind {
	if ref.Table == "" {
		class := s.r.Event.Class
		if class == monitor.ClassLATRow && ref.Column != "LAT" {
			return unknownKind
		}
		if k, ok := monitor.AttrKind(class, ref.Column); ok {
			return known(k)
		}
		return unknownKind
	}
	if _, isClass := monitor.ClassAttributes(ref.Table); isClass {
		if ref.Table == monitor.ClassLATRow && ref.Column != "LAT" {
			return unknownKind
		}
		if k, ok := monitor.AttrKind(ref.Table, ref.Column); ok {
			return known(k)
		}
		return unknownKind
	}
	if spec, ok := s.c.lats[ref.Table]; ok {
		if k, colOK := latColumnKind(spec, ref.Column); colOK {
			return k
		}
	}
	return unknownKind
}

// satRefTruthy handles a bare reference used as a boolean: truthy ⟺
// non-NULL and ≠ 0 for numeric kinds; other kinds are never truthy.
func (s *satChecker) satRefTruthy(ref *sqlparser.ColumnRef, want bool) worldList {
	k := s.refKindQuiet(ref)
	if !k.known {
		return top
	}
	v := canonicalVar(s.r.Event.Class, ref)
	if !numericKind(k.kind) {
		if want {
			return nil // strings/times are never truthy
		}
		return top
	}
	if want {
		vc := unconstrainedNum(k.kind)
		vc.allowNull = false
		vc.excl = []float64{0}
		return worldList{world{v: vc}}
	}
	// Not truthy: NULL, or exactly zero.
	null := unconstrainedNum(k.kind)
	null.valueSetEmpty = true
	zero := unconstrainedNum(k.kind)
	zero.allowNull = false
	zero.lo, zero.hi = 0, 0
	return worldList{world{v: null}, world{v: zero}}
}

// satIsNull handles expr IS [NOT] NULL.
func (s *satChecker) satIsNull(x *sqlparser.IsNull, want bool) worldList {
	ref, ok := x.Expr.(*sqlparser.ColumnRef)
	if !ok {
		return top
	}
	k := s.refKindQuiet(ref)
	kind := sqltypes.KindFloat
	if k.known {
		kind = k.kind
	}
	v := canonicalVar(s.r.Event.Class, ref)
	wantNull := want != x.Negate // IS NULL true ⟺ null; IS NOT NULL flips
	vc := unconstrainedNum(kind)
	if kind == sqltypes.KindString {
		vc = &varConstraint{kind: kind, allowNull: true}
	}
	if wantNull {
		vc.valueSetEmpty = true
	} else {
		vc.allowNull = false
	}
	return worldList{world{v: vc}}
}

// satComparison handles ref-vs-literal, literal-vs-literal and
// same-ref comparisons; anything else claims nothing.
func (s *satChecker) satComparison(x *sqlparser.Comparison, want bool) worldList {
	// Constant fold both sides first.
	lv, lConst := foldConst(x.Left)
	rv, rConst := foldConst(x.Right)
	if lConst && rConst {
		if lv.IsNull() || rv.IsNull() {
			// NULL comparison: never truthy.
			if want {
				return nil
			}
			return top
		}
		if cmpHolds(x.Op, sqltypes.Compare(lv, rv)) == want {
			return top
		}
		return nil
	}

	lRef, lIsRef := x.Left.(*sqlparser.ColumnRef)
	rRef, rIsRef := x.Right.(*sqlparser.ColumnRef)

	// Same variable on both sides: Compare(v, v) == 0 when non-NULL.
	if lIsRef && rIsRef {
		lv := canonicalVar(s.r.Event.Class, lRef)
		rv := canonicalVar(s.r.Event.Class, rRef)
		if lv == rv {
			holds := cmpHolds(x.Op, 0) // x = x, x <= x, x >= x true; <, >, != false
			k := s.refKindQuiet(lRef)
			kind := sqltypes.KindFloat
			if k.known {
				kind = k.kind
			}
			vc := unconstrainedNum(kind)
			if holds == want {
				if want {
					vc.allowNull = false // needs a non-NULL binding
				}
				// want false via "holds false" needs nothing beyond TOP.
				return worldList{world{lv: vc}}
			}
			if want {
				return nil // x < x can never be truthy
			}
			// want false for an always-holding op: only NULL does it.
			vc.valueSetEmpty = true
			return worldList{world{lv: vc}}
		}
		return top // two distinct variables: claim nothing
	}

	var ref *sqlparser.ColumnRef
	var lit sqltypes.Value
	op := x.Op
	switch {
	case lIsRef && rConst:
		ref, lit = lRef, rv
	case rIsRef && lConst:
		ref, lit = rRef, lv
		op = flipCmp(op)
	default:
		return top
	}

	if lit.IsNull() {
		// comparison with NULL literal is never truthy
		if want {
			return nil
		}
		return top
	}

	k := s.refKindQuiet(ref)
	if !k.known {
		return top
	}
	v := canonicalVar(s.r.Event.Class, ref)

	// Kind-mismatched comparison: Compare orders by kind tag, so the
	// outcome is fixed whenever the variable is non-NULL.
	refNum, litNum := numericKind(k.kind), lit.IsNumeric()
	if refNum != litNum || (!refNum && k.kind != lit.Kind()) {
		holds := cmpHolds(op, kindOrder(k.kind, lit.Kind()))
		return s.constForNonNull(v, k.kind, holds, want)
	}

	if refNum {
		f, _ := lit.AsFloat()
		return s.numericAtom(v, k.kind, op, f, want)
	}
	if k.kind == sqltypes.KindString {
		return s.stringAtom(v, op, lit.Str(), want)
	}
	// Time and blob kinds: no literal syntax reaches here; claim nothing.
	return top
}

// constForNonNull builds the worlds for an atom whose outcome is `holds`
// whenever the variable is non-NULL (kind-mismatch and same-ref cases).
func (s *satChecker) constForNonNull(v string, kind sqltypes.Kind, holds, want bool) worldList {
	vc := unconstrainedNum(kind)
	if kind == sqltypes.KindString {
		vc = &varConstraint{kind: kind, allowNull: true}
	}
	if holds == want {
		if want {
			vc.allowNull = false
			return worldList{world{v: vc}}
		}
		return top
	}
	if want {
		return nil
	}
	vc.valueSetEmpty = true // only NULL makes it false
	return worldList{world{v: vc}}
}

// numericAtom builds the worlds for `v op lit` over a numeric variable.
func (s *satChecker) numericAtom(v string, kind sqltypes.Kind, op sqlparser.CmpOp, lit float64, want bool) worldList {
	if !want {
		// Not truthy: NULL, or the inverted comparison.
		null := unconstrainedNum(kind)
		null.valueSetEmpty = true
		inv := s.numericAtom(v, kind, invertCmp(op), lit, true)
		return union(worldList{world{v: null}}, inv)
	}
	mk := func(f func(vc *varConstraint)) worldList {
		vc := unconstrainedNum(kind)
		vc.allowNull = false
		f(vc)
		if !vc.consistent() {
			return nil
		}
		return worldList{world{v: vc}}
	}
	switch op {
	case sqlparser.CmpEq:
		return mk(func(vc *varConstraint) { vc.lo, vc.hi = lit, lit })
	case sqlparser.CmpNe:
		return mk(func(vc *varConstraint) { vc.excl = []float64{lit} })
	case sqlparser.CmpLt:
		return mk(func(vc *varConstraint) { vc.hi, vc.hiOpen = lit, true })
	case sqlparser.CmpLe:
		return mk(func(vc *varConstraint) { vc.hi = lit })
	case sqlparser.CmpGt:
		return mk(func(vc *varConstraint) { vc.lo, vc.loOpen = lit, true })
	case sqlparser.CmpGe:
		return mk(func(vc *varConstraint) { vc.lo = lit })
	}
	return top
}

// stringAtom builds the worlds for `v op lit` over a string variable.
// Only equality structure is tracked; ordering comparisons claim nothing
// beyond non-NULLness.
func (s *satChecker) stringAtom(v string, op sqlparser.CmpOp, lit string, want bool) worldList {
	if !want {
		null := &varConstraint{kind: sqltypes.KindString, allowNull: true, valueSetEmpty: true}
		inv := s.stringAtom(v, invertCmp(op), lit, true)
		return union(worldList{world{v: null}}, inv)
	}
	vc := &varConstraint{kind: sqltypes.KindString}
	switch op {
	case sqlparser.CmpEq:
		vc.eq = map[string]bool{lit: true}
	case sqlparser.CmpNe:
		vc.strExcl = map[string]bool{lit: true}
	default:
		// Lexicographic range: satisfiable for any literal except the
		// empty-string edge (nothing sorts below "").
		if op == sqlparser.CmpLt && lit == "" {
			return nil
		}
	}
	return worldList{world{v: vc}}
}

// cmpHolds reports whether op holds for a Compare result.
func cmpHolds(op sqlparser.CmpOp, c int) bool {
	switch op {
	case sqlparser.CmpEq:
		return c == 0
	case sqlparser.CmpNe:
		return c != 0
	case sqlparser.CmpLt:
		return c < 0
	case sqlparser.CmpLe:
		return c <= 0
	case sqlparser.CmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// invertCmp returns the complement operator (¬(a op b) for non-NULL
// operands).
func invertCmp(op sqlparser.CmpOp) sqlparser.CmpOp {
	switch op {
	case sqlparser.CmpEq:
		return sqlparser.CmpNe
	case sqlparser.CmpNe:
		return sqlparser.CmpEq
	case sqlparser.CmpLt:
		return sqlparser.CmpGe
	case sqlparser.CmpLe:
		return sqlparser.CmpGt
	case sqlparser.CmpGt:
		return sqlparser.CmpLe
	default:
		return sqlparser.CmpLt
	}
}

// flipCmp mirrors the operator across swapped operands (c op x ⇒ x op' c).
func flipCmp(op sqlparser.CmpOp) sqlparser.CmpOp {
	switch op {
	case sqlparser.CmpLt:
		return sqlparser.CmpGt
	case sqlparser.CmpLe:
		return sqlparser.CmpGe
	case sqlparser.CmpGt:
		return sqlparser.CmpLt
	case sqlparser.CmpGe:
		return sqlparser.CmpLe
	default:
		return op
	}
}

// kindOrder mirrors sqltypes.Compare's cross-kind ordering for statically
// known, non-matching kinds.
func kindOrder(a, b sqltypes.Kind) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}
