package rulecheck

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sqlcm/internal/lat"
	"sqlcm/internal/monitor"
	"sqlcm/internal/rules"
	"sqlcm/internal/sqlparser"
)

// The .rules declarative format: whole rule sets — LAT declarations plus
// ECA rules — in one file, the unit sqlcm-vet analyses and
// DB.LoadRuleSet installs. Line-oriented; '#' starts a comment.
//
//	set max_trigger_depth 8            # optional, set-level
//
//	lat Duration_LAT {
//	    group_by Logical_Signature     # comma-separated attribute refs
//	    agg avg Duration as Avg_Duration aging
//	    agg count as N                 # count takes no attribute
//	    order_by N desc                # also the eviction priority
//	    max_rows 100
//	    max_bytes 1048576
//	    aging_window 1m
//	    aging_block 5s
//	}
//
//	rule outlier on Query.Commit {
//	    when Duration > 5 * Duration_LAT.Avg_Duration
//	    persist outliers attrs ID, Query_Text, Duration
//	    persist report from Duration_LAT
//	    insert Duration_LAT
//	    reset Duration_LAT
//	    sendmail "dba@example.com" "outlier {ID}: {Duration}s"
//	    runexternal "notify.sh {User}"
//	    cancel                         # or: cancel Blocker
//	    timer flush period 5s count -1 # or: timer flush off
//	}
//
// ParseSet reports structural problems (unknown directives, malformed
// blocks) as an error; condition parse failures become "syntax"
// diagnostics so a batch run surfaces every broken rule instead of
// stopping at the first.

// ParseSet parses a .rules file into a Set (Closed=true: the file is a
// complete universe) plus syntax diagnostics for unparsable conditions.
func ParseSet(src string) (*Set, []Diagnostic, error) {
	p := &setParser{lines: strings.Split(src, "\n")}
	set := &Set{Closed: true}
	for p.next() {
		line := p.line
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "set "):
			if err := p.parseSetDirective(set, line); err != nil {
				return nil, nil, err
			}
		case strings.HasPrefix(line, "lat "):
			spec, err := p.parseLAT(line)
			if err != nil {
				return nil, nil, err
			}
			set.LATs = append(set.LATs, *spec)
		case strings.HasPrefix(line, "rule "):
			rd, diags, err := p.parseRule(line)
			if err != nil {
				return nil, nil, err
			}
			p.diags = append(p.diags, diags...)
			set.Rules = append(set.Rules, *rd)
		default:
			return nil, nil, p.errf("expected 'set', 'lat' or 'rule', got %q", firstField(line))
		}
	}
	return set, p.diags, nil
}

type setParser struct {
	lines []string
	n     int    // 1-based number of the current line
	line  string // current line, comment-stripped and trimmed
	diags []Diagnostic
}

// next advances to the following line; false at end of input.
func (p *setParser) next() bool {
	if p.n >= len(p.lines) {
		return false
	}
	raw := p.lines[p.n]
	p.n++
	if i := strings.IndexByte(raw, '#'); i >= 0 && !insideQuotes(raw, i) {
		raw = raw[:i]
	}
	p.line = strings.TrimSpace(raw)
	return true
}

// insideQuotes reports whether byte i of s falls inside a double-quoted
// string (so '#' in notification text is not a comment).
func insideQuotes(s string, i int) bool {
	in := false
	for j := 0; j < i; j++ {
		if s[j] == '"' {
			in = !in
		}
	}
	return in
}

func (p *setParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("rules file line %d: %s", p.n, fmt.Sprintf(format, args...))
}

func firstField(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// parseSetDirective handles set-level options.
func (p *setParser) parseSetDirective(set *Set, line string) error {
	f := strings.Fields(line)
	if len(f) != 3 {
		return p.errf("set directive wants 'set <option> <value>'")
	}
	switch f[1] {
	case "max_trigger_depth":
		n, err := strconv.Atoi(f[2])
		if err != nil || n <= 0 {
			return p.errf("max_trigger_depth wants a positive integer, got %q", f[2])
		}
		set.MaxTriggerDepth = n
		return nil
	default:
		return p.errf("unknown set option %q", f[1])
	}
}

// parseLAT parses one `lat Name { … }` block.
func (p *setParser) parseLAT(header string) (*lat.Spec, error) {
	f := strings.Fields(strings.TrimSuffix(header, "{"))
	if len(f) != 2 || !strings.HasSuffix(header, "{") {
		return nil, p.errf("lat header wants 'lat <name> {'")
	}
	name := f[1]
	spec := &lat.Spec{Name: name}
	for p.next() {
		line := p.line
		switch {
		case line == "":
			continue
		case line == "}":
			return spec, nil
		case strings.HasPrefix(line, "group_by "):
			for _, c := range splitCommaList(strings.TrimPrefix(line, "group_by ")) {
				spec.GroupBy = append(spec.GroupBy, c)
			}
		case strings.HasPrefix(line, "agg "):
			col, err := p.parseAgg(strings.TrimPrefix(line, "agg "))
			if err != nil {
				return nil, err
			}
			spec.Aggs = append(spec.Aggs, *col)
		case strings.HasPrefix(line, "order_by "):
			for _, c := range splitCommaList(strings.TrimPrefix(line, "order_by ")) {
				key := lat.OrderKey{Col: c}
				if strings.HasSuffix(c, " desc") {
					key = lat.OrderKey{Col: strings.TrimSpace(strings.TrimSuffix(c, " desc")), Desc: true}
				} else if strings.HasSuffix(c, " asc") {
					key = lat.OrderKey{Col: strings.TrimSpace(strings.TrimSuffix(c, " asc"))}
				}
				spec.OrderBy = append(spec.OrderBy, key)
			}
		case strings.HasPrefix(line, "max_rows "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "max_rows ")))
			if err != nil || n < 0 {
				return nil, p.errf("max_rows wants a non-negative integer")
			}
			spec.MaxRows = n
		case strings.HasPrefix(line, "max_bytes "):
			n, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "max_bytes ")), 10, 64)
			if err != nil || n < 0 {
				return nil, p.errf("max_bytes wants a non-negative integer")
			}
			spec.MaxBytes = n
		case strings.HasPrefix(line, "aging_window "):
			d, err := time.ParseDuration(strings.TrimSpace(strings.TrimPrefix(line, "aging_window ")))
			if err != nil {
				return nil, p.errf("aging_window: %v", err)
			}
			spec.AgingWindow = d
		case strings.HasPrefix(line, "aging_block "):
			d, err := time.ParseDuration(strings.TrimSpace(strings.TrimPrefix(line, "aging_block ")))
			if err != nil {
				return nil, p.errf("aging_block: %v", err)
			}
			spec.AgingBlock = d
		default:
			return nil, p.errf("unknown lat directive %q", firstField(line))
		}
	}
	return nil, p.errf("lat %s: missing closing '}'", name)
}

// parseAgg parses `<func> [<attr>] as <name> [aging]`.
func (p *setParser) parseAgg(rest string) (*lat.AggCol, error) {
	f := strings.Fields(rest)
	if len(f) < 3 {
		return nil, p.errf("agg wants '<func> [<attr>] as <name> [aging]'")
	}
	fn, err := aggFunc(f[0])
	if err != nil {
		return nil, p.errf("%v", err)
	}
	col := &lat.AggCol{Func: fn}
	i := 1
	if f[i] != "as" {
		col.Attr = f[i]
		i++
	}
	if i >= len(f) || f[i] != "as" || i+1 >= len(f) {
		return nil, p.errf("agg wants '<func> [<attr>] as <name> [aging]'")
	}
	col.Name = f[i+1]
	i += 2
	if i < len(f) {
		if f[i] != "aging" || i+1 < len(f) {
			return nil, p.errf("unexpected %q after agg column name", f[i])
		}
		col.Aging = true
	}
	return col, nil
}

func aggFunc(name string) (lat.AggFunc, error) {
	switch strings.ToLower(name) {
	case "count":
		return lat.Count, nil
	case "sum":
		return lat.Sum, nil
	case "avg":
		return lat.Avg, nil
	case "min":
		return lat.Min, nil
	case "max":
		return lat.Max, nil
	case "stdev":
		return lat.Stdev, nil
	case "first":
		return lat.First, nil
	case "last":
		return lat.Last, nil
	default:
		return lat.Count, fmt.Errorf("unknown aggregate %q", name)
	}
}

// parseRule parses one `rule Name on Class.Event { … }` block.
func (p *setParser) parseRule(header string) (*RuleDef, []Diagnostic, error) {
	f := strings.Fields(strings.TrimSuffix(header, "{"))
	if len(f) != 4 || f[2] != "on" {
		return nil, nil, p.errf("rule header wants 'rule <name> on <Class.Event> {'")
	}
	if !strings.HasSuffix(header, "{") {
		return nil, nil, p.errf("rule header must end with '{'")
	}
	rd := &RuleDef{Name: f[1]}
	var diags []Diagnostic
	ev, err := monitor.ParseEvent(f[3])
	if err != nil {
		// Recorded as a diagnostic (Check also flags unknown events), but
		// keep parsing the block so later rules are still analysed.
		diags = append(diags, Diagnostic{Rule: rd.Name, Analysis: "syntax", Severity: Error, Pos: -1,
			Message: fmt.Sprintf("line %d: unknown event %q", p.n, f[3])})
	}
	rd.Event = ev
	for p.next() {
		line := p.line
		switch {
		case line == "":
			continue
		case line == "}":
			return rd, diags, nil
		case strings.HasPrefix(line, "when "):
			src := strings.TrimSpace(strings.TrimPrefix(line, "when "))
			rd.CondSrc = src
			cond, err := rules.ParseCondition(src)
			if err != nil {
				pos := -1
				var pe *sqlparser.ParseError
				if errors.As(err, &pe) {
					pos = pe.Offset
				}
				diags = append(diags, Diagnostic{Rule: rd.Name, Analysis: "syntax", Severity: Error,
					Pos: pos, Message: fmt.Sprintf("line %d: %v", p.n, err)})
				continue
			}
			rd.Cond = cond
		default:
			a, err := p.parseAction(line)
			if err != nil {
				return nil, nil, err
			}
			rd.Actions = append(rd.Actions, a)
		}
	}
	return nil, nil, p.errf("rule %s: missing closing '}'", rd.Name)
}

// parseAction parses one action line inside a rule block.
func (p *setParser) parseAction(line string) (rules.Action, error) {
	verb := firstField(line)
	rest := strings.TrimSpace(strings.TrimPrefix(line, verb))
	switch verb {
	case "insert":
		if rest == "" || len(strings.Fields(rest)) != 1 {
			return nil, p.errf("insert wants 'insert <LAT>'")
		}
		return &rules.InsertAction{LAT: rest}, nil
	case "reset":
		if rest == "" || len(strings.Fields(rest)) != 1 {
			return nil, p.errf("reset wants 'reset <LAT>'")
		}
		return &rules.ResetAction{LAT: rest}, nil
	case "persist":
		return p.parsePersist(rest)
	case "sendmail":
		parts, err := quotedStrings(rest)
		if err != nil || len(parts) != 2 {
			return nil, p.errf(`sendmail wants 'sendmail "<address>" "<text>"'`)
		}
		return &rules.SendMailAction{Address: parts[0], Text: parts[1]}, nil
	case "runexternal":
		parts, err := quotedStrings(rest)
		if err != nil || len(parts) != 1 {
			return nil, p.errf(`runexternal wants 'runexternal "<command>"'`)
		}
		return &rules.RunExternalAction{Command: parts[0]}, nil
	case "cancel":
		if rest != "" && len(strings.Fields(rest)) != 1 {
			return nil, p.errf("cancel wants 'cancel [<Class>]'")
		}
		return &rules.CancelAction{Class: rest}, nil
	case "timer":
		return p.parseTimer(rest)
	default:
		return nil, p.errf("unknown action %q", verb)
	}
}

// parsePersist parses `<table> attrs a, b, …` or `<table> from <LAT>`.
func (p *setParser) parsePersist(rest string) (rules.Action, error) {
	f := strings.Fields(rest)
	if len(f) >= 3 && f[1] == "from" {
		if len(f) != 3 {
			return nil, p.errf("persist wants 'persist <table> from <LAT>'")
		}
		return &rules.PersistAction{Table: f[0], FromLAT: f[2]}, nil
	}
	if len(f) >= 3 && f[1] == "attrs" {
		attrs := splitCommaList(strings.TrimSpace(strings.TrimPrefix(rest, f[0]+" attrs")))
		if len(attrs) == 0 {
			return nil, p.errf("persist wants at least one attribute")
		}
		return &rules.PersistAction{Table: f[0], Attrs: attrs}, nil
	}
	return nil, p.errf("persist wants 'persist <table> attrs <a, b, …>' or 'persist <table> from <LAT>'")
}

// parseTimer parses `<name> period <dur> count <n>` or `<name> off`.
func (p *setParser) parseTimer(rest string) (rules.Action, error) {
	f := strings.Fields(rest)
	if len(f) == 2 && f[1] == "off" {
		return &rules.SetTimerAction{Timer: f[0]}, nil
	}
	if len(f) != 5 || f[1] != "period" || f[3] != "count" {
		return nil, p.errf("timer wants 'timer <name> period <duration> count <n>' or 'timer <name> off'")
	}
	d, err := time.ParseDuration(f[2])
	if err != nil {
		return nil, p.errf("timer period: %v", err)
	}
	n, err := strconv.Atoi(f[4])
	if err != nil {
		return nil, p.errf("timer count wants an integer, got %q", f[4])
	}
	return &rules.SetTimerAction{Timer: f[0], Period: d, Count: n}, nil
}

// splitCommaList splits "a, b, c" into trimmed non-empty fields.
func splitCommaList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if t := strings.TrimSpace(part); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// quotedStrings parses a sequence of double-quoted strings ("" escapes a
// quote inside).
func quotedStrings(s string) ([]string, error) {
	var out []string
	i := 0
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			return out, nil
		}
		if s[i] != '"' {
			return nil, fmt.Errorf("expected '\"' at %q", s[i:])
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated string")
			}
			if s[i] == '"' {
				if i+1 < len(s) && s[i+1] == '"' {
					b.WriteByte('"')
					i += 2
					continue
				}
				i++
				break
			}
			b.WriteByte(s[i])
			i++
		}
		out = append(out, b.String())
	}
}
