package rulecheck

import (
	"fmt"
	"strings"

	"sqlcm/internal/monitor"
	"sqlcm/internal/rules"
)

// Action validation: LAT references (Insert/Reset/Persist) against the
// declared LAT schemas, attribute resolution for Insert sources and
// Persist columns (including the sanitized-column collision rule),
// Cancel applicability, timer parameters, and {ref} substitution
// placeholders in notification text.

// checkActions validates one rule's action list.
func (c *checker) checkActions(r *RuleDef) {
	if len(r.Actions) == 0 {
		c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Warning, Pos: -1,
			Message: "rule has no actions"})
		return
	}
	resolvable := c.resolvableClasses(r)
	for _, a := range r.Actions {
		switch x := a.(type) {
		case *rules.InsertAction:
			c.checkInsert(r, resolvable, x)
		case *rules.ResetAction:
			c.checkLATExists(r, "Reset", x.LAT)
		case *rules.PersistAction:
			c.checkPersist(r, resolvable, x)
		case *rules.SendMailAction:
			c.checkPlaceholders(r, resolvable, "SendMail", x.Text)
		case *rules.RunExternalAction:
			c.checkPlaceholders(r, resolvable, "RunExternal", x.Command)
		case *rules.CancelAction:
			c.checkCancel(r, resolvable, x)
		case *rules.SetTimerAction:
			c.checkSetTimer(r, x)
		case *rules.FuncAction:
			if x.Fn == nil {
				c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Error, Pos: -1,
					Message: fmt.Sprintf("Func action %q has a nil function", x.Name)})
			}
		}
	}
}

// checkLATExists validates that a LAT named by an action is declared.
// Outside a closed set an engine can define the LAT after the rule, so
// the finding is only a warning there.
func (c *checker) checkLATExists(r *RuleDef, action, name string) bool {
	if name == "" {
		c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: Error, Pos: -1,
			Message: action + " action names no LAT"})
		return false
	}
	if _, ok := c.lats[name]; ok {
		return true
	}
	sev := Warning
	msg := fmt.Sprintf("%s references LAT %q, which is not declared (it may be defined later)", action, name)
	if c.set.Closed {
		sev = Error
		msg = fmt.Sprintf("%s references LAT %q, which is not declared in this set", action, name)
	}
	c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: sev, Pos: -1, Message: msg})
	return false
}

// checkInsert validates that every source attribute of the target LAT —
// grouping attributes and aggregation inputs — resolves in the rule's
// event context, mirroring the runtime failure lat.Table.Insert raises.
func (c *checker) checkInsert(r *RuleDef, resolvable map[string]bool, a *rules.InsertAction) {
	if !c.checkLATExists(r, "Insert", a.LAT) {
		return
	}
	spec := c.lats[a.LAT]
	for _, g := range spec.GroupBy {
		c.checkAttrRef(r, resolvable, fmt.Sprintf("Insert(%s) grouping attribute", a.LAT), g)
	}
	for _, agg := range spec.Aggs {
		if agg.Attr == "" { // COUNT(*)
			continue
		}
		c.checkAttrRef(r, resolvable, fmt.Sprintf("Insert(%s) aggregation input", a.LAT), agg.Attr)
	}
}

// checkPersist validates a Persist action: LAT existence for LAT
// persists, and per-attribute resolution plus the sanitized-column
// collision rule for object persists.
func (c *checker) checkPersist(r *RuleDef, resolvable map[string]bool, a *rules.PersistAction) {
	if a.Table == "" {
		c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Error, Pos: -1,
			Message: "Persist action names no target table"})
	}
	if a.FromLAT != "" {
		c.checkLATExists(r, "Persist", a.FromLAT)
		return
	}
	if len(a.Attrs) == 0 {
		c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Error, Pos: -1,
			Message: "Persist action lists no attributes (and no source LAT)"})
		return
	}
	seen := make(map[string]string, len(a.Attrs))
	for _, ref := range a.Attrs {
		col := sanitized(ref)
		if prev, dup := seen[col]; dup {
			c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("Persist attributes %q and %q both map to column %q: one would silently overwrite the other", prev, ref, col)})
		}
		seen[col] = ref
		c.checkAttrRef(r, resolvable, "Persist attribute", ref)
	}
}

// checkAttrRef validates one attribute reference ("Attr" or
// "Class.Attr") against the rule's event context. References to
// declared LATs are accepted (the runtime reads the matching row).
func (c *checker) checkAttrRef(r *RuleDef, resolvable map[string]bool, what, ref string) {
	qual, attr, qualified := cutDot(ref)
	if !qualified {
		class := r.Event.Class
		if class == monitor.ClassLATRow {
			return // dynamic row columns resolve at runtime
		}
		if _, ok := monitor.AttrKind(class, ref); !ok {
			c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("%s %q: %s has no probe attribute %q (event %s)", what, ref, class, ref, r.Event)})
		}
		return
	}
	if _, isClass := monitor.ClassAttributes(qual); isClass {
		if !resolvable[qual] {
			c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("%s %q: event %s does not bind a %s object", what, ref, r.Event, qual)})
			return
		}
		if qual == monitor.ClassLATRow {
			return
		}
		if _, ok := monitor.AttrKind(qual, attr); !ok {
			c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("%s %q: %s has no probe attribute %q", what, ref, qual, attr)})
		}
		return
	}
	if spec, ok := c.lats[qual]; ok {
		if _, colOK := latColumnKind(spec, attr); !colOK {
			c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("%s %q: LAT %s has no column %q (columns: %s)", what, ref, qual, attr, columnsOf(spec))})
		}
		return
	}
	sev := Warning
	msg := fmt.Sprintf("%s %q: %s names neither a monitored class nor a declared LAT", what, ref, qual)
	if c.set.Closed {
		sev = Error
	}
	c.report(Diagnostic{Rule: r.Name, Analysis: "latref", Severity: sev, Pos: -1, Message: msg})
}

// checkPlaceholders validates the {ref} substitutions in notification
// text. Unresolvable placeholders are not runtime errors — Substitute
// leaves them literal — so findings are warnings.
func (c *checker) checkPlaceholders(r *RuleDef, resolvable map[string]bool, action, text string) {
	for _, ref := range placeholders(text) {
		qual, attr, qualified := cutDot(ref)
		if !qualified {
			class := r.Event.Class
			if class == monitor.ClassLATRow {
				continue
			}
			if _, ok := monitor.AttrKind(class, ref); !ok {
				c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Warning, Pos: -1,
					Message: fmt.Sprintf("%s placeholder {%s}: %s has no probe attribute %q; the placeholder will appear literally", action, ref, class, ref)})
			}
			continue
		}
		if _, isClass := monitor.ClassAttributes(qual); isClass {
			if !resolvable[qual] {
				c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Warning, Pos: -1,
					Message: fmt.Sprintf("%s placeholder {%s}: event %s does not bind a %s object", action, ref, r.Event, qual)})
				continue
			}
			if qual == monitor.ClassLATRow {
				continue
			}
			if _, ok := monitor.AttrKind(qual, attr); !ok {
				c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Warning, Pos: -1,
					Message: fmt.Sprintf("%s placeholder {%s}: %s has no probe attribute %q", action, ref, qual, attr)})
			}
			continue
		}
		if spec, ok := c.lats[qual]; ok {
			if _, colOK := latColumnKind(spec, attr); !colOK {
				c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Warning, Pos: -1,
					Message: fmt.Sprintf("%s placeholder {%s}: LAT %s has no column %q", action, ref, qual, attr)})
			}
			continue
		}
		if c.set.Closed {
			c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Warning, Pos: -1,
				Message: fmt.Sprintf("%s placeholder {%s}: %s names neither a monitored class nor a declared LAT", action, ref, qual)})
		}
	}
}

// placeholders extracts {ref} substitution references from text,
// mirroring rules.Substitute's scan.
func placeholders(text string) []string {
	var out []string
	for {
		i := strings.IndexByte(text, '{')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(text[i:], '}')
		if j < 0 {
			return out
		}
		out = append(out, text[i+1:i+j])
		text = text[i+j+1:]
	}
}

// checkCancel validates a Cancel action: the targeted object must be a
// cancellable class bound by the event.
func (c *checker) checkCancel(r *RuleDef, resolvable map[string]bool, a *rules.CancelAction) {
	class := a.Class
	if class == "" {
		class = r.Event.Class
	}
	switch class {
	case monitor.ClassQuery, monitor.ClassBlocker, monitor.ClassBlocked:
	default:
		c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Error, Pos: -1,
			Message: fmt.Sprintf("Cancel applies to Query, Blocker or Blocked objects, not %s", class)})
		return
	}
	if a.Class != "" && !resolvable[a.Class] {
		c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Error, Pos: -1,
			Message: fmt.Sprintf("Cancel(%s): event %s does not bind a %s object", a.Class, r.Event, a.Class)})
	}
}

// checkSetTimer validates timer parameters against TimerManager.Set's
// runtime rejection rules.
func (c *checker) checkSetTimer(r *RuleDef, a *rules.SetTimerAction) {
	if a.Timer == "" {
		c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Error, Pos: -1,
			Message: "Set timer action names no timer"})
	}
	if a.Count != 0 && a.Period <= 0 {
		c.report(Diagnostic{Rule: r.Name, Analysis: "action", Severity: Error, Pos: -1,
			Message: fmt.Sprintf("timer %q needs a positive period (got %s)", a.Timer, a.Period)})
	}
}
