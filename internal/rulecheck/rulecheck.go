// Package rulecheck statically analyses whole ECA rule sets before they
// run. The paper's rules (§5) have real static structure — conditions are
// arithmetic/comparison/boolean expressions over typed probe attributes
// (Appendix A), actions reference LAT schemas, and the engine must bound
// recursive triggering — so a large class of defects is decidable at
// CreateRule time instead of surfacing at dispatch time (or never, for
// dead rules).
//
// Analyses (each diagnostic carries the analysis id):
//
//	type    — type inference for condition expressions against the
//	          monitored-class probe schemas: unknown probes, probes of
//	          classes the event neither binds nor the engine can
//	          enumerate, kind-mismatched comparisons and arithmetic
//	          (Duration > "abc").
//	sat     — interval-based satisfiability: dead rules whose condition
//	          can never be true (Duration > 10 AND Duration < 5) and
//	          conditions that are always true.
//	latref  — LAT reference validation: Insert/Reset/Persist actions and
//	          condition references checked against declared LAT
//	          grouping/aggregation schemas, including the sanitized-
//	          column collision rules of the Persist action.
//	trigger — the rule-trigger graph: actions that raise events (timers,
//	          LAT-eviction objects) linked to the rules subscribed to
//	          them, with cycle detection and a static nesting-depth
//	          bound mirroring the paper's recursive-triggering limit.
//	shadow  — duplicate and shadowed rules on the same event.
//	action  — non-LAT action defects: Cancel on classes the event does
//	          not bind, invalid timer parameters, unresolvable
//	          notification placeholders, empty action lists.
//	syntax  — condition parse failures (positioned by the parser).
//	latdef  — malformed LAT specifications (batch mode).
//
// The engine integration (internal/core) runs Check at rule-registration
// time in Warn or Strict mode; cmd/sqlcm-vet runs it in batch over
// declarative rule-set files.
package rulecheck

import (
	"fmt"
	"sort"
	"strings"

	"sqlcm/internal/lat"
	"sqlcm/internal/monitor"
	"sqlcm/internal/rules"
	"sqlcm/internal/sqlparser"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities. Strict mode rejects rules with Error diagnostics; warnings
// are advisory in every mode.
const (
	Warning Severity = iota
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Mode selects how the engine integration treats diagnostics at rule
// registration time.
type Mode uint8

// Modes. Off skips analysis entirely; Warn records diagnostics but
// registers the rule; Strict rejects rules with Error diagnostics.
const (
	Warn Mode = iota
	Strict
	Off
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Rule names the offending rule ("" for set-level findings).
	Rule string
	// Analysis identifies the analysis that produced the finding
	// ("type", "sat", "latref", "trigger", "shadow", "action",
	// "syntax", "latdef").
	Analysis string
	Severity Severity
	// Pos is the byte offset of the finding in the rule's condition
	// source (-1 when the finding has no position: action-level and
	// set-level findings, or rules registered without source text).
	Pos     int
	Message string
}

// String renders the diagnostic in a vet-style line.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Rule != "" {
		fmt.Fprintf(&b, "rule %q: ", d.Rule)
	}
	fmt.Fprintf(&b, "[%s] %s: %s", d.Analysis, d.Severity, d.Message)
	if d.Pos >= 0 {
		fmt.Fprintf(&b, " (offset %d)", d.Pos)
	}
	return b.String()
}

// RuleDef is the analyser's view of one rule. CondSrc is the original
// condition text when known (positions are resolved against it); Cond is
// the parsed condition (nil = always true).
type RuleDef struct {
	Name    string
	Event   monitor.Event
	CondSrc string
	Cond    sqlparser.Expr
	Actions []rules.Action
}

// DefaultMaxTriggerDepth bounds synchronous trigger chains (the paper's
// recursive-triggering limit): an action that evicts a LAT row dispatches
// LATRow.Evicted re-entrantly in the same thread, so deep chains grow the
// query thread's stack.
const DefaultMaxTriggerDepth = 8

// Set is a whole rule set with the LAT schemas its rules reference.
type Set struct {
	LATs  []lat.Spec
	Rules []RuleDef
	// Closed marks a complete universe (batch files): references to
	// undeclared LATs become errors instead of "may be defined later"
	// warnings.
	Closed bool
	// MaxTriggerDepth overrides DefaultMaxTriggerDepth (0 = default).
	MaxTriggerDepth int
}

// checker carries one Check invocation.
type checker struct {
	set   *Set
	lats  map[string]*lat.Spec
	diags []Diagnostic
}

// Check analyses the rule set and returns its findings, most severe
// first within each rule, rules in set order.
func Check(set *Set) []Diagnostic {
	c := &checker{set: set, lats: make(map[string]*lat.Spec, len(set.LATs))}
	for i := range set.LATs {
		spec := &set.LATs[i]
		if _, dup := c.lats[spec.Name]; dup {
			c.report(Diagnostic{Analysis: "latdef", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("LAT %q declared twice", spec.Name)})
			continue
		}
		c.lats[spec.Name] = spec
		// lat.New runs the spec's own consistency validation without
		// registering anything.
		if _, err := lat.New(*spec); err != nil {
			c.report(Diagnostic{Analysis: "latdef", Severity: Error, Pos: -1,
				Message: err.Error()})
		}
	}
	seen := make(map[string]bool, len(set.Rules))
	for i := range set.Rules {
		r := &set.Rules[i]
		if r.Name == "" {
			c.report(Diagnostic{Analysis: "syntax", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("rule #%d has no name", i+1)})
		} else if seen[r.Name] {
			c.report(Diagnostic{Rule: r.Name, Analysis: "shadow", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("rule %q declared twice", r.Name)})
		}
		seen[r.Name] = true
		if _, ok := monitor.EventIndex(r.Event); !ok {
			c.report(Diagnostic{Rule: r.Name, Analysis: "syntax", Severity: Error, Pos: -1,
				Message: fmt.Sprintf("unknown event %q", r.Event.String())})
			continue
		}
		c.checkTypes(r)
		c.checkSat(r)
		c.checkActions(r)
	}
	c.checkTriggers()
	c.checkShadow()
	c.sortByRule()
	return c.diags
}

// HasErrors reports whether any diagnostic is Error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// report records one diagnostic.
func (c *checker) report(d Diagnostic) { c.diags = append(c.diags, d) }

// sortByRule orders findings by rule position in the set (set-level
// findings keep their emit position relative to rules), then severity
// (errors first). The sort is stable so same-severity findings keep
// analysis order.
func (c *checker) sortByRule() {
	order := make(map[string]int, len(c.set.Rules))
	for i, r := range c.set.Rules {
		order[r.Name] = i
	}
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		ai, aok := order[a.Rule]
		bi, bok := order[b.Rule]
		if aok && bok && ai != bi {
			return ai < bi
		}
		if aok != bok {
			return !aok // set-level findings first
		}
		return a.Severity > b.Severity
	})
}

// pos locates a sub-expression's text inside the rule's condition source,
// for diagnostics that point at a reference or literal. Returns -1 when
// the rule was registered without source text or the text is not found.
func (c *checker) pos(r *RuleDef, sub string) int {
	if r.CondSrc == "" || sub == "" {
		return -1
	}
	return strings.Index(r.CondSrc, sub)
}

// resolvableClasses returns the classes a rule's references can bind: the
// classes its event binds, plus enumerable classes referenced by the
// condition (the engine's expand step iterates live objects of those,
// §5.2).
func (c *checker) resolvableClasses(r *RuleDef) map[string]bool {
	out := make(map[string]bool, 4)
	for _, cl := range monitor.BoundClasses(r.Event) {
		out[cl] = true
	}
	sqlparser.WalkExpr(r.Cond, func(e sqlparser.Expr) {
		ref, ok := e.(*sqlparser.ColumnRef)
		if !ok || ref.Table == "" {
			return
		}
		if monitor.EnumerableClass(ref.Table) {
			out[ref.Table] = true
		}
	})
	return out
}

// refString renders a column reference in its source spelling.
func refString(ref *sqlparser.ColumnRef) string {
	if ref.Table == "" {
		return ref.Column
	}
	return ref.Table + "." + ref.Column
}

// canonicalVar names a reference for the satisfiability analysis:
// unqualified references resolve against the event's primary object, so
// "Duration" and "Query.Duration" constrain the same variable on a
// Query.* event.
func canonicalVar(eventClass string, ref *sqlparser.ColumnRef) string {
	if ref.Table == "" {
		return eventClass + "." + ref.Column
	}
	return refString(ref)
}
