package rulecheck

import (
	"os"
	"path/filepath"
	"testing"
)

// The shipped example rule sets must be clean: no errors, no warnings.
// They double as end-to-end fixtures for the .rules parser.
func TestExampleRulesetsAreClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "rulesets")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var n int
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".rules" {
			continue
		}
		n++
		t.Run(ent.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			set, diags, err := ParseSet(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(diags) > 0 {
				t.Fatalf("parse diagnostics: %v", diags)
			}
			for _, d := range Check(set) {
				t.Errorf("unexpected finding: %s", d)
			}
		})
	}
	if n == 0 {
		t.Fatal("no .rules files found")
	}
}
