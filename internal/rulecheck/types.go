package rulecheck

import (
	"fmt"

	"sqlcm/internal/lat"
	"sqlcm/internal/monitor"
	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
)

// Type inference over condition expressions, against the monitored-class
// probe schemas (Appendix A) and the declared LAT schemas. The runtime
// comparison semantics are forgiving — sqltypes.Compare orders values of
// different kinds by kind tag instead of failing — which is exactly why a
// kind-mismatched comparison is a defect: `Duration > "abc"` never
// compares numbers, it compares type tags, so the predicate is
// constant-for-kind and almost certainly not what the rule author meant.

// inferredKind is a statically inferred kind; known=false means the
// analysis cannot determine it (dynamic LATRow columns, references to
// LATs defined outside the set, already-reported errors).
type inferredKind struct {
	kind  sqltypes.Kind
	known bool
}

func known(k sqltypes.Kind) inferredKind { return inferredKind{kind: k, known: true} }

var unknownKind = inferredKind{}

// numericKind reports whether a kind participates in numeric comparison
// and arithmetic (the runtime treats BOOL as 0/1).
func numericKind(k sqltypes.Kind) bool {
	return k == sqltypes.KindInt || k == sqltypes.KindFloat || k == sqltypes.KindBool
}

// checkTypes runs type inference over one rule's condition, emitting
// diagnostics for unknown probes, unresolvable classes, and
// kind-mismatched operators.
func (c *checker) checkTypes(r *RuleDef) {
	if r.Cond == nil {
		return
	}
	t := &typeChecker{c: c, r: r, resolvable: c.resolvableClasses(r)}
	t.infer(r.Cond)
}

// typeChecker carries the per-rule inference state.
type typeChecker struct {
	c          *checker
	r          *RuleDef
	resolvable map[string]bool
	// reportedClasses dedupes "class can never bind" findings per class.
	reportedClasses map[string]bool
}

func (t *typeChecker) errorf(pos int, format string, args ...interface{}) {
	t.c.report(Diagnostic{Rule: t.r.Name, Analysis: "type", Severity: Error,
		Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (t *typeChecker) warnf(pos int, format string, args ...interface{}) {
	t.c.report(Diagnostic{Rule: t.r.Name, Analysis: "type", Severity: Warning,
		Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// infer computes the static kind of an expression, emitting diagnostics
// along the way.
func (t *typeChecker) infer(e sqlparser.Expr) inferredKind {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return known(x.Val.Kind())

	case *sqlparser.Param:
		t.errorf(t.c.pos(t.r, "@"+x.Name), "parameters are not allowed in rule conditions")
		return unknownKind

	case *sqlparser.FuncCall:
		t.errorf(t.c.pos(t.r, x.Name), "function calls are not supported in rule conditions")
		return unknownKind

	case *sqlparser.ColumnRef:
		return t.inferRef(x)

	case *sqlparser.Arith:
		return t.inferArith(x)

	case *sqlparser.Comparison:
		t.checkComparison(x)
		return known(sqltypes.KindBool)

	case *sqlparser.Logic:
		t.checkLogicOperand(x.Left, x.Op.String())
		t.checkLogicOperand(x.Right, x.Op.String())
		return known(sqltypes.KindBool)

	case *sqlparser.Not:
		t.infer(x.Expr)
		return known(sqltypes.KindBool)

	case *sqlparser.Neg:
		in := t.infer(x.Expr)
		if in.known && !numericKind(in.kind) {
			t.errorf(t.c.pos(t.r, x.Expr.String()), "cannot negate a %s value", in.kind)
			return unknownKind
		}
		return in

	case *sqlparser.IsNull:
		t.infer(x.Expr)
		return known(sqltypes.KindBool)

	default:
		t.errorf(-1, "unsupported condition node %T", e)
		return unknownKind
	}
}

// inferRef resolves a probe-attribute or LAT-column reference.
func (t *typeChecker) inferRef(ref *sqlparser.ColumnRef) inferredKind {
	pos := t.c.pos(t.r, refString(ref))
	if ref.Table == "" {
		// Unqualified: resolves against the event's primary object.
		class := t.r.Event.Class
		if class == monitor.ClassLATRow && ref.Column != "LAT" {
			// LATRow columns beyond the static "LAT" attribute come from
			// the source LAT's spec; the source is only known at runtime.
			return unknownKind
		}
		if k, ok := monitor.AttrKind(class, ref.Column); ok {
			return known(k)
		}
		t.errorf(pos, "%s has no probe attribute %q (event %s)", class, ref.Column, t.r.Event)
		return unknownKind
	}
	if _, isClass := monitor.ClassAttributes(ref.Table); isClass {
		if !t.resolvable[ref.Table] {
			if t.reportedClasses == nil {
				t.reportedClasses = make(map[string]bool, 2)
			}
			if !t.reportedClasses[ref.Table] {
				t.reportedClasses[ref.Table] = true
				t.errorf(pos, "condition references class %s, which event %s does not bind and the engine cannot enumerate: the rule will never evaluate",
					ref.Table, t.r.Event)
			}
			return unknownKind
		}
		if ref.Table == monitor.ClassLATRow && ref.Column != "LAT" {
			return unknownKind
		}
		if k, ok := monitor.AttrKind(ref.Table, ref.Column); ok {
			return known(k)
		}
		t.errorf(pos, "%s has no probe attribute %q", ref.Table, ref.Column)
		return unknownKind
	}
	if spec, ok := c2spec(t.c, ref.Table); ok {
		k, colOK := latColumnKind(spec, ref.Column)
		if !colOK {
			t.errorf(pos, "LAT %s has no column %q (columns: %s)",
				ref.Table, ref.Column, columnsOf(spec))
			return unknownKind
		}
		return k
	}
	sev := Warning
	msg := fmt.Sprintf("reference %s.%s names neither a monitored class nor a declared LAT (a LAT defined after the rule resolves at runtime)", ref.Table, ref.Column)
	if t.c.set.Closed {
		sev = Error
		msg = fmt.Sprintf("reference %s.%s names neither a monitored class nor a LAT declared in this set", ref.Table, ref.Column)
	}
	t.c.report(Diagnostic{Rule: t.r.Name, Analysis: "latref", Severity: sev, Pos: pos, Message: msg})
	return unknownKind
}

func c2spec(c *checker, name string) (*lat.Spec, bool) {
	s, ok := c.lats[name]
	return s, ok
}

// inferArith types an arithmetic node, matching sqltypes.Arith: string
// concatenation for +, numeric promotion otherwise, everything else an
// error.
func (t *typeChecker) inferArith(x *sqlparser.Arith) inferredKind {
	l := t.infer(x.Left)
	r := t.infer(x.Right)
	if !l.known || !r.known {
		return unknownKind
	}
	if l.kind == sqltypes.KindNull || r.kind == sqltypes.KindNull {
		t.warnf(t.c.pos(t.r, "NULL"), "arithmetic with NULL is always NULL, so the enclosing comparison is always false")
		return unknownKind
	}
	if x.Op == sqltypes.OpAdd && l.kind == sqltypes.KindString && r.kind == sqltypes.KindString {
		return known(sqltypes.KindString)
	}
	if !numericKind(l.kind) || !numericKind(r.kind) {
		t.errorf(t.c.pos(t.r, x.Op.String()), "cannot apply %s to %s and %s", x.Op, l.kind, r.kind)
		return unknownKind
	}
	if x.Op == sqltypes.OpDiv || l.kind == sqltypes.KindFloat || r.kind == sqltypes.KindFloat {
		return known(sqltypes.KindFloat)
	}
	return known(sqltypes.KindInt)
}

// checkComparison validates operand kinds: numeric compares with numeric,
// otherwise both sides must share a kind. A kind mismatch never fails at
// runtime — sqltypes.Compare orders by kind tag — which makes the
// predicate constant and the rule silently wrong.
func (t *typeChecker) checkComparison(x *sqlparser.Comparison) {
	l := t.infer(x.Left)
	r := t.infer(x.Right)
	if !l.known || !r.known {
		return
	}
	if l.kind == sqltypes.KindNull || r.kind == sqltypes.KindNull {
		t.warnf(t.c.pos(t.r, "NULL"), "comparison with NULL is always false; use IS NULL / IS NOT NULL")
		return
	}
	if numericKind(l.kind) && numericKind(r.kind) {
		return
	}
	if l.kind == r.kind {
		return
	}
	t.errorf(t.c.pos(t.r, x.Op.String()), "comparing %s with %s: the runtime orders mismatched kinds by type tag, so this predicate is constant", l.kind, r.kind)
}

// checkLogicOperand types one AND/OR operand. Operands of statically
// non-numeric kind are never truthy (truthy() returns false for strings
// and times), so the operand is constant false.
func (t *typeChecker) checkLogicOperand(e sqlparser.Expr, op string) {
	k := t.infer(e)
	if k.known && !numericKind(k.kind) && k.kind != sqltypes.KindNull {
		t.errorf(t.c.pos(t.r, e.String()), "%s operand has type %s, which is never true", op, k.kind)
	}
}

// latColumnKind infers the kind of one LAT output column from its spec:
// grouping columns take the kind of their source probe attribute,
// aggregation columns follow the aggregate function.
func latColumnKind(spec *lat.Spec, col string) (inferredKind, bool) {
	for _, g := range spec.GroupBy {
		if g == col || sanitized(g) == col {
			return attrRefKind(g), true
		}
	}
	for _, a := range spec.Aggs {
		if a.Name != col {
			continue
		}
		switch a.Func {
		case lat.Count:
			return known(sqltypes.KindInt), true
		case lat.Avg, lat.Stdev:
			return known(sqltypes.KindFloat), true
		case lat.Sum:
			src := attrRefKind(a.Attr)
			if src.known && src.kind == sqltypes.KindInt {
				return known(sqltypes.KindInt), true
			}
			return known(sqltypes.KindFloat), true
		default: // Min, Max, First, Last carry the source kind.
			return attrRefKind(a.Attr), true
		}
	}
	return unknownKind, false
}

// attrRefKind resolves a LAT source-attribute reference ("Duration",
// "Blocker.Query_Text") to its probe kind. Unqualified references are
// looked up in every class schema; the Appendix A schemas keep shared
// attribute names (ID, User, Duration, …) kind-consistent, so the first
// match is authoritative.
func attrRefKind(ref string) inferredKind {
	if ref == "" {
		return unknownKind
	}
	if class, attr, qualified := cutDot(ref); qualified {
		if k, ok := monitor.AttrKind(class, attr); ok {
			return known(k)
		}
		return unknownKind
	}
	for _, class := range []string{
		monitor.ClassQuery, monitor.ClassTransaction, monitor.ClassTimer, monitor.ClassMonitor,
	} {
		if k, ok := monitor.AttrKind(class, ref); ok {
			return known(k)
		}
	}
	return unknownKind
}

func cutDot(s string) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

func sanitized(ref string) string {
	out := []byte(ref)
	for i := range out {
		if out[i] == '.' {
			out[i] = '_'
		}
	}
	return string(out)
}

func columnsOf(spec *lat.Spec) string {
	cols := spec.Columns()
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return out
}
