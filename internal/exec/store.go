package exec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sqlcm/internal/catalog"
	"sqlcm/internal/index"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/storage"
)

// TableStore binds a catalog table to its heap file and index structures.
type TableStore struct {
	Meta    *catalog.Table
	Heap    *storage.HeapFile
	Indexes map[string]*index.BTree // keyed by index name

	// Vers, when non-nil, makes the table multi-versioned: chains are the
	// authoritative read path (snapshot and current mode), the heap
	// mirrors the current row images, and physical deletes are deferred
	// to the version-garbage collector. Nil for legacy (2PL-read) tables.
	Vers *storage.VersionStore
}

// NewTableStore creates storage for a table, including B+trees for every
// index already declared in the catalog entry.
func NewTableStore(meta *catalog.Table, pool *storage.BufferPool) (*TableStore, error) {
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return nil, err
	}
	ts := &TableStore{Meta: meta, Heap: heap, Indexes: make(map[string]*index.BTree)}
	for _, ix := range meta.Indexes {
		ts.Indexes[ix.Name] = index.New(ix.Unique)
	}
	return ts, nil
}

// IndexKey extracts the encoded key of row for the given index.
func (ts *TableStore) IndexKey(ix *catalog.Index, row Row) []byte {
	vals := make([]sqltypes.Value, len(ix.Columns))
	for i, ord := range ix.Columns {
		vals[i] = row[ord]
	}
	return sqltypes.EncodeKey(vals...)
}

// AddIndex registers a new B+tree for ix and populates it from the heap.
// The scan callback runs under the page read-latch, so it only collects
// (key, rid) pairs; the btree inserts happen after the scan returns.
// Inserting inside the callback would nest index.btree under storage.page,
// and the index mutex must stay a root class of the lock hierarchy (see
// docs/lock-order.md).
func (ts *TableStore) AddIndex(ix *catalog.Index) error {
	bt := index.New(ix.Unique)
	ncols := len(ts.Meta.Columns)
	type entry struct {
		key []byte
		rid storage.RID
	}
	var entries []entry
	if ts.Vers != nil {
		// Versioned table: the chains are authoritative (the heap still
		// holds deleted-but-unpruned rows). Entries carry anchor RIDs.
		for _, cr := range ts.Vers.CurrentScan() {
			row, err := DecodeRow(cr.Rec, ncols)
			if err != nil {
				return err
			}
			entries = append(entries, entry{key: ts.IndexKey(ix, row), rid: cr.Anchor})
		}
	} else {
		var buildErr error
		err := ts.Heap.Scan(func(rid storage.RID, rec []byte) bool {
			row, err := DecodeRow(rec, ncols)
			if err != nil {
				buildErr = err
				return false
			}
			entries = append(entries, entry{key: ts.IndexKey(ix, row), rid: rid})
			return true
		})
		if err != nil {
			return err
		}
		if buildErr != nil {
			return buildErr
		}
	}
	for _, e := range entries {
		if err := bt.Insert(e.key, e.rid); err != nil {
			return fmt.Errorf("exec: building index %s: %w", ix.Name, err)
		}
	}
	ts.Indexes[ix.Name] = bt
	return nil
}

// PruneVersions runs one version-garbage-collection pass at the given
// watermark and applies the physical cleanup: stale index entries whose
// superseding commits every snapshot has passed, and heap slots of rows
// deleted before the watermark. The caller must hold the table's exclusive
// lock (Prune itself only takes the version store's leaf latch).
func (ts *TableStore) PruneVersions(watermark int64) {
	if ts.Vers == nil {
		return
	}
	work := ts.Vers.Prune(watermark)
	for _, p := range work.Entries {
		if bt := ts.Indexes[p.Index]; bt != nil {
			bt.Delete(p.Key, p.Rid)
		}
	}
	for _, rid := range work.HeapRIDs {
		_ = ts.Heap.Delete(rid) // slot already reclaimed is fine
	}
}

// StoreProvider resolves table names to their stores.
type StoreProvider interface {
	Store(table string) (*TableStore, error)
}

// Registry is a thread-safe StoreProvider backed by a map.
type Registry struct {
	// mu protects the store map.
	//sqlcm:lock exec.registry
	//sqlcm:guards stores
	mu     sync.RWMutex
	stores map[string]*TableStore
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stores: make(map[string]*TableStore)}
}

// Store implements StoreProvider.
func (r *Registry) Store(table string) (*TableStore, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts, ok := r.stores[table]
	if !ok {
		return nil, fmt.Errorf("exec: no storage for table %q", table)
	}
	return ts, nil
}

// Names returns the registered table names in sorted order (the
// version-garbage collector iterates tables in deterministic order, which
// also matches the statement-level lock ordering).
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.stores))
	for name := range r.stores {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Register installs a table store.
func (r *Registry) Register(name string, ts *TableStore) {
	r.mu.Lock()
	r.stores[name] = ts
	r.mu.Unlock()
}

// Unregister removes a table store.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.stores, name)
	r.mu.Unlock()
}

// EncodeRow serializes a row with the self-delimiting value encoding.
func EncodeRow(row Row) []byte {
	var out []byte
	for _, v := range row {
		out = v.Encode(out)
	}
	return out
}

// DecodeRow parses exactly ncols values from rec.
func DecodeRow(rec []byte, ncols int) (Row, error) {
	row := make(Row, 0, ncols)
	rest := rec
	for i := 0; i < ncols; i++ {
		v, r, err := sqltypes.Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("exec: decoding column %d: %w", i, err)
		}
		row = append(row, v)
		rest = r
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("exec: %d trailing bytes after %d columns", len(rest), ncols)
	}
	return row, nil
}

// CoerceValue converts v to the column kind, applying the widenings the SQL
// layer permits (INT→FLOAT, BOOL→INT, INT→BOOL, string→DATETIME parse,
// integral FLOAT→INT). NULL passes through.
func CoerceValue(kind sqltypes.Kind, v sqltypes.Value) (sqltypes.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	switch kind {
	case sqltypes.KindFloat:
		if f, ok := v.AsFloat(); ok {
			return sqltypes.NewFloat(f), nil
		}
	case sqltypes.KindInt:
		switch v.Kind() {
		case sqltypes.KindBool:
			return sqltypes.NewInt(v.Int()), nil
		case sqltypes.KindFloat:
			if v.Float() == float64(int64(v.Float())) {
				return sqltypes.NewInt(int64(v.Float())), nil
			}
		}
	case sqltypes.KindBool:
		if i, ok := v.AsInt(); ok {
			return sqltypes.NewBool(i != 0), nil
		}
	case sqltypes.KindTime:
		if v.Kind() == sqltypes.KindString {
			for _, layout := range []string{
				"2006-01-02 15:04:05.000000",
				"2006-01-02 15:04:05",
				"2006-01-02",
				time.RFC3339,
			} {
				if t, err := time.Parse(layout, v.Str()); err == nil {
					return sqltypes.NewTime(t), nil
				}
			}
		}
	case sqltypes.KindString:
		// No implicit conversion to string: be strict.
	}
	return sqltypes.Null, fmt.Errorf("exec: cannot convert %s %s to %s", v.Kind(), v, kind)
}
