package exec

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sqlcm/internal/catalog"
	"sqlcm/internal/lock"
	"sqlcm/internal/plan"
	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/storage"
	"sqlcm/internal/txn"
)

// harness is a minimal engine for exec-level tests: catalog + storage +
// transactions, no locking or monitoring.
type harness struct {
	cat  *catalog.Catalog
	reg  *Registry
	pool *storage.BufferPool
	tm   *txn.Manager
	t    *testing.T
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	return &harness{
		cat:  catalog.New(),
		reg:  NewRegistry(),
		pool: storage.NewBufferPool(storage.NewMemDisk(), 256),
		tm:   txn.NewManager(lock.NewManager(time.Second)),
		t:    t,
	}
}

func (h *harness) mustExec(sql string, params map[string]sqltypes.Value) ([]Row, int64) {
	h.t.Helper()
	rows, n, err := h.exec(sql, params)
	if err != nil {
		h.t.Fatalf("exec %q: %v", sql, err)
	}
	return rows, n
}

func (h *harness) exec(sql string, params map[string]sqltypes.Value) ([]Row, int64, error) {
	tx := h.tm.Begin(true)
	rows, n, err := h.execIn(tx, sql, params)
	if err != nil {
		h.tm.Rollback(tx) //nolint:errcheck
		return nil, 0, err
	}
	if cerr := h.tm.Commit(tx); cerr != nil {
		return nil, 0, cerr
	}
	return rows, n, err
}

func (h *harness) execIn(tx *txn.Txn, sql string, params map[string]sqltypes.Value) ([]Row, int64, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, 0, err
	}
	switch s := stmt.(type) {
	case *sqlparser.CreateTable:
		cols := make([]catalog.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type, PrimaryKey: c.PrimaryKey, NotNull: c.NotNull}
		}
		meta, err := h.cat.CreateTable(s.Name, cols)
		if err != nil {
			return nil, 0, err
		}
		ts, err := NewTableStore(meta, h.pool)
		if err != nil {
			return nil, 0, err
		}
		h.reg.Register(s.Name, ts)
		return nil, 0, nil
	case *sqlparser.CreateIndex:
		ix, err := h.cat.CreateIndex(s.Name, s.Table, s.Columns, s.Unique)
		if err != nil {
			return nil, 0, err
		}
		ts, err := h.reg.Store(s.Table)
		if err != nil {
			return nil, 0, err
		}
		return nil, 0, ts.AddIndex(ix)
	}
	l, err := plan.BuildLogical(stmt, h.cat)
	if err != nil {
		return nil, 0, err
	}
	p, err := plan.Optimize(l, h.cat)
	if err != nil {
		return nil, 0, err
	}
	ctx := &Ctx{Txn: tx, Params: params}
	switch pp := p.(type) {
	case *plan.PhysInsert:
		n, err := ExecInsert(ctx, h.reg, pp, h.cat)
		return nil, n, err
	case *plan.PhysUpdate:
		n, err := ExecUpdate(ctx, h.reg, pp, h.cat)
		return nil, n, err
	case *plan.PhysDelete:
		n, err := ExecDelete(ctx, h.reg, pp, h.cat)
		return nil, n, err
	default:
		op, err := Build(p, h.reg)
		if err != nil {
			return nil, 0, err
		}
		rows, err := Run(op, ctx)
		return rows, int64(len(rows)), err
	}
}

func (h *harness) setupItems() {
	h.mustExec(`CREATE TABLE items (
		id INT PRIMARY KEY,
		name VARCHAR NOT NULL,
		qty INT,
		price FLOAT
	)`, nil)
	for i := 1; i <= 100; i++ {
		h.mustExec(fmt.Sprintf(
			"INSERT INTO items VALUES (%d, 'item%02d', %d, %g)",
			i, i%10, i%7, float64(i)*1.5), nil)
	}
}

func TestInsertSelectRoundTrip(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	rows, _ := h.mustExec("SELECT id, name, qty, price FROM items WHERE id = 42", nil)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r[0].Int() != 42 || r[1].Str() != "item02" || r[2].Int() != 0 || r[3].Float() != 63 {
		t.Fatalf("row: %v", r)
	}
}

func TestSelectStarAndOrderLimit(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	rows, _ := h.mustExec("SELECT * FROM items ORDER BY price DESC LIMIT 3", nil)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0].Int() != 100 || rows[1][0].Int() != 99 || rows[2][0].Int() != 98 {
		t.Fatalf("order: %v %v %v", rows[0][0], rows[1][0], rows[2][0])
	}
}

func TestWhereVariants(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM items WHERE id <= 10", 10},
		{"SELECT id FROM items WHERE id > 90 AND id <= 95", 5},
		{"SELECT id FROM items WHERE name = 'item03'", 10},
		{"SELECT id FROM items WHERE qty = 3 OR qty = 4", 28},
		{"SELECT id FROM items WHERE NOT id <= 99", 1},
		{"SELECT id FROM items WHERE id % 2 = 0 AND id <= 10", 5},
		{"SELECT id FROM items WHERE price >= 148.5 AND price <= 150", 2},
	}
	for _, c := range cases {
		rows, _ := h.mustExec(c.sql, nil)
		if len(rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(rows), c.want)
		}
	}
}

func TestParams(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	rows, _ := h.mustExec("SELECT id FROM items WHERE id = @key",
		map[string]sqltypes.Value{"key": sqltypes.NewInt(7)})
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Fatalf("rows: %v", rows)
	}
	_, _, err := h.exec("SELECT id FROM items WHERE id = @missing", nil)
	if err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("expected unbound-parameter error, got %v", err)
	}
}

func TestAggregation(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	rows, _ := h.mustExec(
		"SELECT name, COUNT(*), SUM(qty), AVG(price), MIN(id), MAX(id) FROM items GROUP BY name ORDER BY name", nil)
	if len(rows) != 10 {
		t.Fatalf("groups: %d", len(rows))
	}
	// Group 'item00' holds ids 10,20,…,100.
	r := rows[0]
	if r[0].Str() != "item00" || r[1].Int() != 10 {
		t.Fatalf("group row: %v", r)
	}
	if r[4].Int() != 10 || r[5].Int() != 100 {
		t.Fatalf("min/max: %v %v", r[4], r[5])
	}
	wantAvg := 0.0
	for i := 10; i <= 100; i += 10 {
		wantAvg += float64(i) * 1.5
	}
	wantAvg /= 10
	if got := r[3].Float(); got != wantAvg {
		t.Fatalf("avg: %v want %v", got, wantAvg)
	}
}

func TestGrandAggregateAndHaving(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	rows, _ := h.mustExec("SELECT COUNT(*) FROM items", nil)
	if len(rows) != 1 || rows[0][0].Int() != 100 {
		t.Fatalf("count: %v", rows)
	}
	rows, _ = h.mustExec(
		"SELECT qty, COUNT(*) FROM items GROUP BY qty HAVING COUNT(*) > 14", nil)
	for _, r := range rows {
		if r[1].Int() <= 14 {
			t.Fatalf("having violated: %v", r)
		}
	}
	if len(rows) != 2 { // qty 0 and 1 have 15 members (100/7)
		t.Fatalf("having groups: %d (%v)", len(rows), rows)
	}
}

func TestStdevAggregate(t *testing.T) {
	h := newHarness(t)
	h.mustExec("CREATE TABLE m (id INT PRIMARY KEY, v FLOAT)", nil)
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.mustExec(fmt.Sprintf("INSERT INTO m VALUES (%d, %g)", i, v), nil)
	}
	rows, _ := h.mustExec("SELECT STDEV(v) FROM m", nil)
	// Sample stdev of this classic dataset = sqrt(32/7) ≈ 2.138.
	got := rows[0][0].Float()
	if got < 2.13 || got > 2.15 {
		t.Fatalf("stdev: %v", got)
	}
}

func TestJoins(t *testing.T) {
	h := newHarness(t)
	h.mustExec("CREATE TABLE o (okey INT PRIMARY KEY, cust INT)", nil)
	h.mustExec("CREATE TABLE l (lid INT PRIMARY KEY, okey INT, qty INT)", nil)
	for i := 1; i <= 20; i++ {
		h.mustExec(fmt.Sprintf("INSERT INTO o VALUES (%d, %d)", i, i%5), nil)
	}
	for i := 1; i <= 60; i++ {
		h.mustExec(fmt.Sprintf("INSERT INTO l VALUES (%d, %d, %d)", i, (i%20)+1, i), nil)
	}
	// Index NL join (inner o has pk on okey).
	rows, _ := h.mustExec("SELECT l.lid, o.cust FROM l JOIN o ON l.okey = o.okey WHERE l.lid <= 10", nil)
	if len(rows) != 10 {
		t.Fatalf("indexNL rows: %d", len(rows))
	}
	// Hash join (join on non-indexed cust).
	rows, _ = h.mustExec("SELECT l.lid FROM l JOIN o ON l.okey = o.cust WHERE l.lid = 5", nil)
	// l.lid=5 has okey=6; o rows with cust=6: none (cust ranges 0..4).
	if len(rows) != 0 {
		t.Fatalf("hash join rows: %d", len(rows))
	}
	rows, _ = h.mustExec("SELECT l.lid FROM l JOIN o ON l.okey = o.cust WHERE l.lid = 4", nil)
	// l.lid=4 has okey=5; no o rows with cust=5 either... cust = i%5 ∈ 0..4.
	if len(rows) != 0 {
		t.Fatalf("hash join rows: %d", len(rows))
	}
	rows, _ = h.mustExec("SELECT l.lid, o.okey FROM l JOIN o ON l.okey = o.cust WHERE l.lid = 3", nil)
	// l.lid=3 has okey=4; o rows with cust=4: okeys 4,9,14,19.
	if len(rows) != 4 {
		t.Fatalf("hash join rows: %d (%v)", len(rows), rows)
	}
	// Non-equi join falls back to nested loop.
	rows, _ = h.mustExec("SELECT l.lid FROM l JOIN o ON l.okey < o.okey WHERE l.lid = 19", nil)
	// l.lid=19 → okey=20; o.okey > 20: none.
	if len(rows) != 0 {
		t.Fatalf("nl join rows: %d", len(rows))
	}
	rows, _ = h.mustExec("SELECT l.lid FROM l JOIN o ON l.okey > o.okey WHERE l.lid = 19", nil)
	if len(rows) != 19 {
		t.Fatalf("nl join rows: %d", len(rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	h := newHarness(t)
	h.mustExec("CREATE TABLE a (id INT PRIMARY KEY, bref INT)", nil)
	h.mustExec("CREATE TABLE b (id INT PRIMARY KEY, cref INT)", nil)
	h.mustExec("CREATE TABLE c (id INT PRIMARY KEY, v VARCHAR)", nil)
	for i := 1; i <= 10; i++ {
		h.mustExec(fmt.Sprintf("INSERT INTO a VALUES (%d, %d)", i, 11-i), nil)
		h.mustExec(fmt.Sprintf("INSERT INTO b VALUES (%d, %d)", i, i), nil)
		h.mustExec(fmt.Sprintf("INSERT INTO c VALUES (%d, 'c%d')", i, i), nil)
	}
	rows, _ := h.mustExec(`SELECT a.id, c.v FROM a
		JOIN b ON a.bref = b.id
		JOIN c ON b.cref = c.id
		WHERE a.id = 3`, nil)
	if len(rows) != 1 || rows[0][1].Str() != "c8" {
		t.Fatalf("three-way join: %v", rows)
	}
}

func TestUpdate(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	_, n := h.mustExec("UPDATE items SET qty = qty + 100 WHERE id <= 5", nil)
	if n != 5 {
		t.Fatalf("updated %d", n)
	}
	rows, _ := h.mustExec("SELECT qty FROM items WHERE id = 3", nil)
	if rows[0][0].Int() != 103 {
		t.Fatalf("qty: %v", rows[0][0])
	}
	// Update via index after key change keeps index consistent.
	_, n = h.mustExec("UPDATE items SET id = 1000 WHERE id = 1", nil)
	if n != 1 {
		t.Fatalf("pk update: %d", n)
	}
	rows, _ = h.mustExec("SELECT id FROM items WHERE id = 1000", nil)
	if len(rows) != 1 {
		t.Fatal("row not findable via new pk")
	}
	rows, _ = h.mustExec("SELECT id FROM items WHERE id = 1", nil)
	if len(rows) != 0 {
		t.Fatal("old pk still in index")
	}
}

func TestDelete(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	_, n := h.mustExec("DELETE FROM items WHERE id > 90", nil)
	if n != 10 {
		t.Fatalf("deleted %d", n)
	}
	rows, _ := h.mustExec("SELECT COUNT(*) FROM items", nil)
	if rows[0][0].Int() != 90 {
		t.Fatalf("count: %v", rows[0][0])
	}
	if h.cat.Stats("items").RowCount != 90 {
		t.Fatalf("stats: %d", h.cat.Stats("items").RowCount)
	}
}

func TestRollbackRestoresEverything(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	tx := h.tm.Begin(false)
	if _, _, err := h.execIn(tx, "UPDATE items SET id = 500, qty = 99 WHERE id = 10", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.execIn(tx, "DELETE FROM items WHERE id = 20", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.execIn(tx, "INSERT INTO items VALUES (999, 'x', 1, 1.0)", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.tm.Rollback(tx); err != nil {
		t.Fatal(err)
	}
	rows, _ := h.mustExec("SELECT COUNT(*) FROM items", nil)
	if rows[0][0].Int() != 100 {
		t.Fatalf("count after rollback: %v", rows[0][0])
	}
	rows, _ = h.mustExec("SELECT qty FROM items WHERE id = 10", nil)
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Fatalf("row 10 not restored: %v", rows)
	}
	rows, _ = h.mustExec("SELECT id FROM items WHERE id = 20", nil)
	if len(rows) != 1 {
		t.Fatal("deleted row not restored")
	}
	rows, _ = h.mustExec("SELECT id FROM items WHERE id = 999", nil)
	if len(rows) != 0 {
		t.Fatal("inserted row survived rollback")
	}
	if h.cat.Stats("items").RowCount != 100 {
		t.Fatalf("stats after rollback: %d", h.cat.Stats("items").RowCount)
	}
}

func TestUniqueViolation(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	_, _, err := h.exec("INSERT INTO items VALUES (50, 'dup', 0, 0.0)", nil)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
	// Table unchanged.
	rows, _ := h.mustExec("SELECT COUNT(*) FROM items", nil)
	if rows[0][0].Int() != 100 {
		t.Fatalf("count: %v", rows[0][0])
	}
	_, _, err = h.exec("UPDATE items SET id = 60 WHERE id = 61", nil)
	if err == nil {
		t.Fatal("update into duplicate pk should fail")
	}
	rows, _ = h.mustExec("SELECT id FROM items WHERE id = 61", nil)
	if len(rows) != 1 {
		t.Fatal("failed update must leave the row intact")
	}
}

func TestNotNullViolation(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	if _, _, err := h.exec("INSERT INTO items VALUES (200, NULL, 0, 0.0)", nil); err == nil {
		t.Fatal("NULL into NOT NULL should fail")
	}
}

func TestNullSemantics(t *testing.T) {
	h := newHarness(t)
	h.mustExec("CREATE TABLE n (id INT PRIMARY KEY, v INT)", nil)
	h.mustExec("INSERT INTO n VALUES (1, 10), (2, NULL), (3, 30)", nil)
	rows, _ := h.mustExec("SELECT id FROM n WHERE v > 5", nil)
	if len(rows) != 2 {
		t.Fatalf("null filtered: %d", len(rows))
	}
	rows, _ = h.mustExec("SELECT id FROM n WHERE v IS NULL", nil)
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Fatalf("IS NULL: %v", rows)
	}
	rows, _ = h.mustExec("SELECT id FROM n WHERE v IS NOT NULL", nil)
	if len(rows) != 2 {
		t.Fatalf("IS NOT NULL: %d", len(rows))
	}
	// NULLs excluded from aggregates except COUNT(*).
	rows, _ = h.mustExec("SELECT COUNT(*), COUNT(v), SUM(v) FROM n", nil)
	if rows[0][0].Int() != 3 || rows[0][1].Int() != 2 || rows[0][2].Float() != 40 {
		t.Fatalf("agg nulls: %v", rows[0])
	}
}

func TestSecondaryIndexMaintainedAcrossDML(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	h.mustExec("CREATE INDEX idx_name ON items (name)", nil)
	rows, _ := h.mustExec("SELECT id FROM items WHERE name = 'item05'", nil)
	if len(rows) != 10 {
		t.Fatalf("index seek rows: %d", len(rows))
	}
	h.mustExec("UPDATE items SET name = 'renamed' WHERE id = 5", nil)
	rows, _ = h.mustExec("SELECT id FROM items WHERE name = 'item05'", nil)
	if len(rows) != 9 {
		t.Fatalf("after rename: %d", len(rows))
	}
	rows, _ = h.mustExec("SELECT id FROM items WHERE name = 'renamed'", nil)
	if len(rows) != 1 || rows[0][0].Int() != 5 {
		t.Fatalf("renamed: %v", rows)
	}
	h.mustExec("DELETE FROM items WHERE name = 'renamed'", nil)
	rows, _ = h.mustExec("SELECT id FROM items WHERE name = 'renamed'", nil)
	if len(rows) != 0 {
		t.Fatal("index entry survived delete")
	}
}

func TestCancellationStopsScan(t *testing.T) {
	h := newHarness(t)
	h.setupItems()
	tx := h.tm.Begin(false)
	tx.Cancel()
	_, _, err := h.execIn(tx, "SELECT COUNT(*) FROM items", nil)
	if err == nil {
		t.Fatal("cancelled txn should not execute")
	}
	h.tm.Rollback(tx) //nolint:errcheck
}

func TestTableLessExpressions(t *testing.T) {
	h := newHarness(t)
	rows, _ := h.mustExec("SELECT 1 + 2 * 3 AS v, 'x' + 'y', ABS(-4), UPPER('ab')", nil)
	r := rows[0]
	if r[0].Int() != 7 || r[1].Str() != "xy" || r[2].Int() != 4 || r[3].Str() != "AB" {
		t.Fatalf("exprs: %v", r)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	row := Row{
		sqltypes.NewInt(1),
		sqltypes.Null,
		sqltypes.NewString("hello"),
		sqltypes.NewFloat(2.5),
		sqltypes.NewBool(true),
		sqltypes.NewTime(time.Unix(123, 456)),
	}
	rec := EncodeRow(row)
	got, err := DecodeRow(rec, len(row))
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if sqltypes.Compare(row[i], got[i]) != 0 {
			t.Fatalf("col %d: %v != %v", i, got[i], row[i])
		}
	}
	if _, err := DecodeRow(rec, len(row)+1); err == nil {
		t.Fatal("over-read should fail")
	}
	if _, err := DecodeRow(rec, len(row)-1); err == nil {
		t.Fatal("trailing bytes should fail")
	}
}

func TestCoerceValue(t *testing.T) {
	if v, err := CoerceValue(sqltypes.KindFloat, sqltypes.NewInt(3)); err != nil || v.Float() != 3 {
		t.Fatalf("int->float: %v %v", v, err)
	}
	if v, err := CoerceValue(sqltypes.KindInt, sqltypes.NewFloat(4.0)); err != nil || v.Int() != 4 {
		t.Fatalf("float->int: %v %v", v, err)
	}
	if _, err := CoerceValue(sqltypes.KindInt, sqltypes.NewFloat(4.5)); err == nil {
		t.Fatal("non-integral float->int should fail")
	}
	if v, err := CoerceValue(sqltypes.KindTime, sqltypes.NewString("2004-03-02")); err != nil || v.Kind() != sqltypes.KindTime {
		t.Fatalf("string->time: %v %v", v, err)
	}
	if _, err := CoerceValue(sqltypes.KindString, sqltypes.NewInt(1)); err == nil {
		t.Fatal("int->string should fail")
	}
	if v, err := CoerceValue(sqltypes.KindInt, sqltypes.Null); err != nil || !v.IsNull() {
		t.Fatal("null passes through")
	}
}

func TestCompileUnknownColumn(t *testing.T) {
	e, _ := sqlparser.ParseExpr("nope + 1")
	if _, err := Compile(e, []plan.ColMeta{{Name: "a"}}); err == nil {
		t.Fatal("unknown column should fail at compile")
	}
	e2, _ := sqlparser.ParseExpr("a")
	if _, err := Compile(e2, []plan.ColMeta{{Qual: "x", Name: "a"}, {Qual: "y", Name: "a"}}); err == nil {
		t.Fatal("ambiguous column should fail")
	}
}
