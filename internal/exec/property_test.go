package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sqlcm/internal/sqltypes"
)

// TestQueryResultsMatchModel loads random rows and cross-checks SELECT
// results (filters, aggregation, ordering, limits) against a naive
// in-memory model of the same data.
func TestQueryResultsMatchModel(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	h := newHarness(t)
	h.mustExec("CREATE TABLE m (id INT PRIMARY KEY, grp INT, v INT)", nil)
	h.mustExec("CREATE INDEX m_grp ON m (grp)", nil)

	type row struct{ id, grp, v int64 }
	var model []row
	for i := 1; i <= 500; i++ {
		rw := row{id: int64(i), grp: int64(r.Intn(12)), v: int64(r.Intn(1000) - 500)}
		model = append(model, rw)
		h.mustExec(fmt.Sprintf("INSERT INTO m VALUES (%d, %d, %d)", rw.id, rw.grp, rw.v), nil)
	}

	// Random point and range filters.
	for trial := 0; trial < 50; trial++ {
		lo := int64(r.Intn(1000) - 500)
		hi := lo + int64(r.Intn(400))
		g := int64(r.Intn(12))
		sql := fmt.Sprintf("SELECT id FROM m WHERE v >= %d AND v <= %d AND grp = %d", lo, hi, g)
		rows, _ := h.mustExec(sql, nil)
		want := map[int64]bool{}
		for _, rw := range model {
			if rw.v >= lo && rw.v <= hi && rw.grp == g {
				want[rw.id] = true
			}
		}
		if len(rows) != len(want) {
			t.Fatalf("%s: got %d rows, want %d", sql, len(rows), len(want))
		}
		for _, got := range rows {
			if !want[got[0].Int()] {
				t.Fatalf("%s: unexpected id %v", sql, got[0])
			}
		}
	}

	// Aggregation per group.
	rows, _ := h.mustExec("SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM m GROUP BY grp", nil)
	type agg struct {
		n        int64
		sum      int64
		mn, mx   int64
		hasFirst bool
	}
	want := map[int64]*agg{}
	for _, rw := range model {
		a := want[rw.grp]
		if a == nil {
			a = &agg{mn: rw.v, mx: rw.v}
			want[rw.grp] = a
		}
		a.n++
		a.sum += rw.v
		if rw.v < a.mn {
			a.mn = rw.v
		}
		if rw.v > a.mx {
			a.mx = rw.v
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("groups: %d want %d", len(rows), len(want))
	}
	for _, got := range rows {
		a := want[got[0].Int()]
		if a == nil {
			t.Fatalf("phantom group %v", got[0])
		}
		if got[1].Int() != a.n || int64(got[2].Float()) != a.sum ||
			got[3].Int() != a.mn || got[4].Int() != a.mx {
			t.Fatalf("group %v: got %v want %+v", got[0], got, *a)
		}
	}

	// Ordering and limit.
	rows, _ = h.mustExec("SELECT id, v FROM m ORDER BY v DESC, id ASC LIMIT 25", nil)
	sorted := append([]row(nil), model...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].v != sorted[j].v {
			return sorted[i].v > sorted[j].v
		}
		return sorted[i].id < sorted[j].id
	})
	if len(rows) != 25 {
		t.Fatalf("limit: %d", len(rows))
	}
	for i, got := range rows {
		if got[0].Int() != sorted[i].id {
			t.Fatalf("order position %d: got id %v want %d", i, got[0], sorted[i].id)
		}
	}
}

// TestDMLSequenceMatchesModel applies a random insert/update/delete stream
// and verifies the table contents (and index consistency) afterwards.
func TestDMLSequenceMatchesModel(t *testing.T) {
	r := rand.New(rand.NewSource(654))
	h := newHarness(t)
	h.mustExec("CREATE TABLE s (id INT PRIMARY KEY, v INT)", nil)
	h.mustExec("CREATE INDEX s_v ON s (v)", nil)
	model := map[int64]int64{}
	nextID := int64(1)

	for step := 0; step < 1500; step++ {
		switch op := r.Intn(10); {
		case op < 5 || len(model) == 0: // insert
			id := nextID
			nextID++
			v := int64(r.Intn(100))
			model[id] = v
			h.mustExec(fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", id, v), nil)
		case op < 8: // update random value class
			v := int64(r.Intn(100))
			nv := int64(r.Intn(100))
			_, n := h.mustExec(fmt.Sprintf("UPDATE s SET v = %d WHERE v = %d", nv, v), nil)
			cnt := int64(0)
			for id, val := range model {
				if val == v {
					model[id] = nv
					cnt++
				}
			}
			if n != cnt {
				t.Fatalf("step %d: update affected %d, model %d", step, n, cnt)
			}
		default: // delete one id
			var victim int64
			for id := range model {
				victim = id
				break
			}
			_, n := h.mustExec(fmt.Sprintf("DELETE FROM s WHERE id = %d", victim), nil)
			if n != 1 {
				t.Fatalf("step %d: delete affected %d", step, n)
			}
			delete(model, victim)
		}
	}
	// Final state matches, via both the PK index and the secondary index.
	rows, _ := h.mustExec("SELECT COUNT(*) FROM s", nil)
	if rows[0][0].Int() != int64(len(model)) {
		t.Fatalf("count: %v want %d", rows[0][0], len(model))
	}
	for id, v := range model {
		got, _ := h.mustExec(fmt.Sprintf("SELECT v FROM s WHERE id = %d", id), nil)
		if len(got) != 1 || got[0][0].Int() != v {
			t.Fatalf("id %d: %v want %d", id, got, v)
		}
	}
	// Secondary-index scan agrees with a full count per value class.
	perV := map[int64]int64{}
	for _, v := range model {
		perV[v]++
	}
	for v, cnt := range perV {
		got, _ := h.mustExec(fmt.Sprintf("SELECT COUNT(*) FROM s WHERE v = %d", v), nil)
		if got[0][0].Int() != cnt {
			t.Fatalf("v=%d: count %v want %d", v, got[0][0], cnt)
		}
	}
}

// TestBufferPoolExhaustionSurfacesError injects an impossibly small pool
// and checks the failure is an error, not a panic or corruption.
func TestBufferPoolExhaustionSurfacesError(t *testing.T) {
	h := newHarness(t)
	h.mustExec("CREATE TABLE big (id INT PRIMARY KEY, pad VARCHAR)", nil)
	// The harness pool has 256 pages; this stays within it, but verify a
	// huge row is rejected cleanly by the slotted page layer.
	pad := make([]byte, 9000)
	for i := range pad {
		pad[i] = 'x'
	}
	_, _, err := h.exec("INSERT INTO big VALUES (1, @p)", map[string]sqltypes.Value{
		"p": sqltypes.NewString(string(pad)),
	})
	if err == nil {
		t.Fatal("oversized row should be rejected")
	}
	// Engine still healthy.
	h.mustExec("INSERT INTO big VALUES (2, 'small')", nil)
	rows, _ := h.mustExec("SELECT COUNT(*) FROM big", nil)
	if rows[0][0].Int() != 1 {
		t.Fatalf("count: %v", rows[0][0])
	}
}
