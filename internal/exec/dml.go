package exec

import (
	"bytes"
	"fmt"

	"sqlcm/internal/catalog"
	"sqlcm/internal/index"
	"sqlcm/internal/plan"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/storage"
)

// DML execution. Statement errors leave the transaction's undo log with the
// inverse of every row change applied so far; the engine responds to a DML
// error by rolling back the transaction (statement-level atomicity is
// subsumed by transaction rollback, a behaviour documented in DESIGN.md).

// ExecInsert runs an insert plan, returning the number of rows inserted.
//
//sqlcm:cancellable
func ExecInsert(ctx *Ctx, sp StoreProvider, p *plan.PhysInsert, cat *catalog.Catalog) (int64, error) {
	ts, err := sp.Store(p.Table.Name)
	if err != nil {
		return 0, err
	}
	evalsPerRow := make([][]Evaluator, len(p.RowsSrc))
	for i, row := range p.RowsSrc {
		// A multi-row INSERT can carry arbitrarily many rows: the compile
		// loop is a statement-deadline boundary just like the apply loop.
		if err := ctx.checkCancel(); err != nil {
			return 0, err
		}
		evalsPerRow[i] = make([]Evaluator, len(row))
		//sqlcm:allow bounded by one row's width
		for j, e := range row {
			ev, err := Compile(e, nil)
			if err != nil {
				return 0, err
			}
			evalsPerRow[i][j] = ev
		}
	}
	var n int64
	for _, evals := range evalsPerRow {
		if err := ctx.checkCancel(); err != nil {
			return n, err
		}
		row := make(Row, len(p.Table.Columns))
		//sqlcm:allow bounded by the table's column count
		for i := range row {
			row[i] = sqltypes.Null
		}
		//sqlcm:allow bounded by one row's width
		for j, ev := range evals {
			v, err := ev.Eval(nil, ctx.Params)
			if err != nil {
				return n, err
			}
			cv, err := CoerceValue(p.Table.Columns[p.Columns[j]].Type, v)
			if err != nil {
				return n, fmt.Errorf("column %q: %w", p.Table.Columns[p.Columns[j]].Name, err)
			}
			row[p.Columns[j]] = cv
		}
		if err := InsertRow(ctx, ts, row, cat); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// InsertRow inserts one fully materialized row into a table store,
// maintaining indexes, NOT NULL constraints, statistics and the undo log.
// It is also the entry point used by the engine for programmatic inserts
// (e.g. persisting LATs).
func InsertRow(ctx *Ctx, ts *TableStore, row Row, cat *catalog.Catalog) error {
	meta := ts.Meta
	if len(row) != len(meta.Columns) {
		return fmt.Errorf("exec: row width %d != %d columns of %q", len(row), len(meta.Columns), meta.Name)
	}
	for i, col := range meta.Columns {
		if col.NotNull && row[i].IsNull() {
			return fmt.Errorf("exec: NULL in NOT NULL column %q of %q", col.Name, meta.Name)
		}
	}
	rec := EncodeRow(row)
	rid, err := ts.Heap.Insert(rec)
	if err != nil {
		return err
	}
	// Maintain indexes; unwind on unique violation.
	var done []*catalog.Index
	for _, ix := range meta.Indexes {
		bt := ts.Indexes[ix.Name]
		if bt == nil {
			continue
		}
		if err := insertEntry(ts, bt, ts.IndexKey(ix, row), rid); err != nil {
			for _, u := range done {
				ts.Indexes[u.Name].Delete(ts.IndexKey(u, row), rid)
			}
			if derr := ts.Heap.Delete(rid); derr != nil {
				return fmt.Errorf("exec: unwind failed (%v) after: %w", derr, err)
			}
			return fmt.Errorf("exec: %s on %q: %w", ix.Name, meta.Name, err)
		}
		done = append(done, ix)
	}
	if ts.Vers != nil {
		// The chain makes the row readable: install it last so no reader
		// resolves the row before its entries exist. Uncommitted inserts
		// are invisible to every other snapshot until the commit stamp.
		if ctx.Txn != nil {
			v := ts.Vers.Install(rid, rec, int64(ctx.Txn.ID), false)
			ctx.Txn.OnCommit(v.SetCommit)
		} else {
			ts.Vers.Install(rid, rec, 0, true)
		}
	}
	if cat != nil {
		cat.AddRows(meta.Name, 1)
	}
	if ctx.Txn != nil {
		rowCopy := row.Clone()
		ctx.Txn.OnRollback(func() error {
			heapRid := rid
			if ts.Vers != nil {
				heapRid = ts.Vers.CurrentRID(rid)
				ts.Vers.Discard(rid)
			}
			for _, ix := range meta.Indexes {
				if bt := ts.Indexes[ix.Name]; bt != nil {
					bt.Delete(ts.IndexKey(ix, rowCopy), rid)
				}
			}
			if cat != nil {
				cat.AddRows(meta.Name, -1)
			}
			return ts.Heap.Delete(heapRid)
		})
	}
	return nil
}

// insertEntry adds entry (key → rid). On a unique violation against a
// versioned table it reclaims the conflicting entry when that entry's row
// is dead (deleted but retained for older snapshots) and retries once —
// the dead row then ceases to be findable through this index, a documented
// limitation of deferred index cleanup.
func insertEntry(ts *TableStore, bt *index.BTree, key []byte, rid storage.RID) error {
	err := bt.Insert(key, rid)
	if err == nil || ts.Vers == nil {
		return err
	}
	ex, ok := bt.Get(key)
	if !ok || !ts.Vers.Dead(ex) {
		return err
	}
	bt.Delete(key, ex)
	return bt.Insert(key, rid)
}

// targetRow is a row located for update/delete.
type targetRow struct {
	rid storage.RID
	row Row
}

// collectTargetsWithRIDs materializes the (rid, row) pairs matched by an
// access path. DML collects all targets before mutating so the scan never
// observes its own writes (Halloween protection).
//
//sqlcm:cancellable
func collectTargetsWithRIDs(ctx *Ctx, ts *TableStore, access *plan.AccessPath, schema []plan.ColMeta) ([]targetRow, error) {
	var residual Evaluator
	if access.Residual != nil {
		ev, err := Compile(access.Residual, schema)
		if err != nil {
			return nil, err
		}
		residual = ev
	}
	ncols := len(ts.Meta.Columns)
	var out []targetRow
	matchRow := func(rid storage.RID, row Row) error {
		ctx.RowsExamined++
		if residual != nil {
			ok, err := EvalBool(residual, row, ctx.Params)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		out = append(out, targetRow{rid: rid, row: row})
		return nil
	}
	appendIfMatch := func(rid storage.RID, rec []byte) error {
		row, err := DecodeRow(rec, ncols)
		if err != nil {
			return err
		}
		return matchRow(rid, row)
	}

	if access.Index == nil {
		if ts.Vers != nil {
			// Versioned table: the chains are the authoritative current
			// state (the heap still holds deleted-but-unpruned rows).
			for _, cr := range ts.Vers.CurrentScan() {
				if err := ctx.checkCancel(); err != nil {
					return nil, err
				}
				if err := appendIfMatch(cr.Rid, cr.Rec); err != nil {
					return nil, err
				}
			}
			return out, nil
		}
		var innerErr error
		err := ts.Heap.Scan(func(rid storage.RID, rec []byte) bool {
			if err := ctx.checkCancel(); err != nil {
				innerErr = err
				return false
			}
			if err := appendIfMatch(rid, rec); err != nil {
				innerErr = err
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		return out, innerErr
	}

	bt := ts.Indexes[access.Index.Name]
	if bt == nil {
		return nil, fmt.Errorf("exec: index %q has no storage", access.Index.Name)
	}
	var eqVals []sqltypes.Value
	//sqlcm:allow bounded by the index's key width
	for _, e := range access.Eq {
		ev, err := Compile(e, nil)
		if err != nil {
			return nil, err
		}
		v, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return nil, err
		}
		eqVals = append(eqVals, v)
	}
	prefix := sqltypes.EncodeKey(eqVals...)
	lo, hi := prefix, prefix
	loIncl, hiIncl := true, true
	if access.Lo != nil {
		ev, err := Compile(access.Lo, nil)
		if err != nil {
			return nil, err
		}
		v, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return nil, err
		}
		lo = v.Encode(append([]byte(nil), prefix...))
		loIncl = access.LoIncl
	}
	if access.Hi != nil {
		ev, err := Compile(access.Hi, nil)
		if err != nil {
			return nil, err
		}
		v, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return nil, err
		}
		hi = v.Encode(append([]byte(nil), prefix...))
		hiIncl = access.HiIncl
	} else if access.Lo != nil || len(eqVals) < len(access.Index.Columns) {
		hi = prefixSuccessor(prefix)
		hiIncl = false
	}
	type entryRef struct {
		key []byte
		rid storage.RID
	}
	var entries []entryRef
	bt.ScanRange(lo, hi, loIncl, hiIncl, func(k []byte, rid storage.RID) bool {
		entries = append(entries, entryRef{key: append([]byte(nil), k...), rid: rid})
		return true
	})
	for _, e := range entries {
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		if ts.Vers != nil {
			curRid, rec, ok := ts.Vers.CurrentAt(e.rid)
			if !ok {
				continue // row deleted; entry retained for older snapshots
			}
			row, err := DecodeRow(rec, ncols)
			if err != nil {
				return nil, err
			}
			// Stale-entry recheck: entries survive key changes until the
			// garbage collector passes; the row's current key must still
			// match this entry (the current key's own entry finds it
			// otherwise), and the recheck also keeps RowsExamined counts
			// identical to eager index maintenance.
			if !bytes.Equal(ts.IndexKey(access.Index, row), e.key) {
				continue
			}
			if err := matchRow(curRid, row); err != nil {
				return nil, err
			}
			continue
		}
		rec, err := ts.Heap.Get(e.rid)
		if err != nil {
			continue // deleted concurrently within our txn's view
		}
		if err := appendIfMatch(e.rid, rec); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExecUpdate runs an update plan, returning the number of rows changed.
//
//sqlcm:cancellable
func ExecUpdate(ctx *Ctx, sp StoreProvider, p *plan.PhysUpdate, cat *catalog.Catalog) (int64, error) {
	ts, err := sp.Store(p.Table.Name)
	if err != nil {
		return 0, err
	}
	schema := make([]plan.ColMeta, len(ts.Meta.Columns))
	//sqlcm:allow bounded by the table's column count
	for i, c := range ts.Meta.Columns {
		schema[i] = plan.ColMeta{Qual: ts.Meta.Name, Name: c.Name}
	}
	targets, err := collectTargetsWithRIDs(ctx, ts, p.Access, schema)
	if err != nil {
		return 0, err
	}
	setEvals := make([]Evaluator, len(p.Sets))
	//sqlcm:allow bounded by the statement's SET list
	for i, s := range p.Sets {
		ev, err := Compile(s.Expr, schema)
		if err != nil {
			return 0, err
		}
		setEvals[i] = ev
	}
	var n int64
	for _, tgt := range targets {
		if err := ctx.checkCancel(); err != nil {
			return n, err
		}
		newRow := tgt.row.Clone()
		//sqlcm:allow bounded by the statement's SET list
		for i, s := range p.Sets {
			v, err := setEvals[i].Eval(tgt.row, ctx.Params)
			if err != nil {
				return n, err
			}
			cv, err := CoerceValue(ts.Meta.Columns[s.Column].Type, v)
			if err != nil {
				return n, fmt.Errorf("column %q: %w", ts.Meta.Columns[s.Column].Name, err)
			}
			if ts.Meta.Columns[s.Column].NotNull && cv.IsNull() {
				return n, fmt.Errorf("exec: NULL in NOT NULL column %q", ts.Meta.Columns[s.Column].Name)
			}
			newRow[s.Column] = cv
		}
		if _, err := updateRow(ctx, ts, tgt.rid, tgt.row, newRow, cat, true); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ixDelta records the index work one versioned update applied for one
// index, so unique-violation unwind and transaction rollback revert it
// exactly.
type ixDelta struct {
	ix       *catalog.Index
	oldKey   []byte
	newKey   []byte
	inserted bool // a fresh entry (newKey, anchor) went into the index
	// canceled, when non-nil, is the deferred removal canceled because
	// newKey returned to the row (its entry was still physically present).
	canceled *storage.Pending
}

// revertIndexDeltas undoes deltas in reverse: drops the deferred oldKey
// removals this update registered, removes entries it inserted, and
// re-registers removals it canceled.
func revertIndexDeltas(ts *TableStore, rid, anchor storage.RID, deltas []ixDelta) {
	for i := len(deltas) - 1; i >= 0; i-- {
		d := deltas[i]
		ts.Vers.TakePending(rid, d.ix.Name, d.oldKey)
		if d.inserted {
			if bt := ts.Indexes[d.ix.Name]; bt != nil {
				bt.Delete(d.newKey, anchor)
			}
		}
		if d.canceled != nil {
			ts.Vers.RestorePending(rid, *d.canceled)
		}
	}
}

// updateRowMVCC is the versioned-update path: push a new version (readers
// resolve through the chain), mirror the current image into the heap, and
// maintain indexes rid-stably — equal keys need no entry work even across
// relocation, changed keys insert the new entry and defer removal of the
// old one to the garbage collector so older snapshots keep finding the row
// under its old key.
func updateRowMVCC(ctx *Ctx, ts *TableStore, rid storage.RID, oldRow, newRow Row, recordUndo bool) (storage.RID, error) {
	newRec := EncodeRow(newRow)
	var txnID int64
	if ctx.Txn != nil {
		txnID = int64(ctx.Txn.ID)
	}
	v := ts.Vers.Push(rid, newRec, txnID)
	if ctx.Txn != nil {
		ctx.Txn.OnCommit(v.SetCommit)
	} else {
		v.SetCommit(storage.BaseCommitTS)
	}
	newRid, err := ts.Heap.Update(rid, newRec)
	if err != nil {
		ts.Vers.Pop(rid)
		return rid, err
	}
	if newRid != rid {
		ts.Vers.Relocate(rid, newRid)
	}
	anchor := ts.Vers.Anchor(newRid)

	var deltas []ixDelta
	for _, ix := range ts.Meta.Indexes {
		bt := ts.Indexes[ix.Name]
		if bt == nil {
			continue
		}
		oldKey := ts.IndexKey(ix, oldRow)
		newKey := ts.IndexKey(ix, newRow)
		if bytes.Equal(oldKey, newKey) {
			continue
		}
		d := ixDelta{ix: ix, oldKey: oldKey, newKey: newKey}
		if p, ok := ts.Vers.TakePending(newRid, ix.Name, newKey); ok {
			d.canceled = &p
		} else if err := insertEntry(ts, bt, newKey, anchor); err != nil {
			// Unique violation: revert the completed index work, pop the
			// version, and restore the heap image; the caller aborts the
			// transaction.
			revertIndexDeltas(ts, newRid, anchor, deltas)
			ts.Vers.Pop(newRid)
			restored, rerr := ts.Heap.Update(newRid, EncodeRow(oldRow))
			if rerr != nil {
				return rid, fmt.Errorf("exec: unwind failed (%v) after: %w", rerr, err)
			}
			if restored != newRid {
				ts.Vers.Relocate(newRid, restored)
			}
			return rid, fmt.Errorf("exec: %s on %q: %w", ix.Name, ts.Meta.Name, err)
		} else {
			d.inserted = true
		}
		ts.Vers.AddPending(newRid, ix.Name, oldKey, anchor, v)
		deltas = append(deltas, d)
	}
	if recordUndo && ctx.Txn != nil {
		oldCopy := oldRow.Clone()
		finalRid := newRid
		ds := deltas
		ctx.Txn.OnRollback(func() error {
			cur := ts.Vers.CurrentRID(finalRid)
			revertIndexDeltas(ts, cur, anchor, ds)
			ts.Vers.Pop(cur)
			restored, err := ts.Heap.Update(cur, EncodeRow(oldCopy))
			if err != nil {
				return err
			}
			if restored != cur {
				ts.Vers.Relocate(cur, restored)
			}
			return nil
		})
	}
	return newRid, nil
}

// updateRow replaces oldRow (at rid) with newRow, fixing indexes and
// optionally recording undo. Returns the row's new RID.
func updateRow(ctx *Ctx, ts *TableStore, rid storage.RID, oldRow, newRow Row, cat *catalog.Catalog, recordUndo bool) (storage.RID, error) {
	if ts.Vers != nil {
		return updateRowMVCC(ctx, ts, rid, oldRow, newRow, recordUndo)
	}
	newRid, err := ts.Heap.Update(rid, EncodeRow(newRow))
	if err != nil {
		return rid, err
	}
	for _, ix := range ts.Meta.Indexes {
		bt := ts.Indexes[ix.Name]
		if bt == nil {
			continue
		}
		oldKey := ts.IndexKey(ix, oldRow)
		newKey := ts.IndexKey(ix, newRow)
		if bytes.Equal(oldKey, newKey) && newRid == rid {
			continue
		}
		bt.Delete(oldKey, rid)
		if err := bt.Insert(newKey, newRid); err != nil {
			// Unique violation: restore the index entry and the heap row,
			// then surface the error (caller aborts the transaction).
			bt.Insert(oldKey, newRid) //nolint:errcheck // restoring prior state
			if _, rerr := ts.Heap.Update(newRid, EncodeRow(oldRow)); rerr != nil {
				return rid, fmt.Errorf("exec: unwind failed (%v) after: %w", rerr, err)
			}
			return rid, fmt.Errorf("exec: %s on %q: %w", ix.Name, ts.Meta.Name, err)
		}
	}
	if recordUndo && ctx.Txn != nil {
		oldCopy := oldRow.Clone()
		newCopy := newRow.Clone()
		finalRid := newRid
		ctx.Txn.OnRollback(func() error {
			_, err := updateRow(ctx, ts, finalRid, newCopy, oldCopy, cat, false)
			return err
		})
	}
	return newRid, nil
}

// ExecDelete runs a delete plan, returning the number of rows removed.
//
//sqlcm:cancellable
func ExecDelete(ctx *Ctx, sp StoreProvider, p *plan.PhysDelete, cat *catalog.Catalog) (int64, error) {
	ts, err := sp.Store(p.Table.Name)
	if err != nil {
		return 0, err
	}
	schema := make([]plan.ColMeta, len(ts.Meta.Columns))
	//sqlcm:allow bounded by the table's column count
	for i, c := range ts.Meta.Columns {
		schema[i] = plan.ColMeta{Qual: ts.Meta.Name, Name: c.Name}
	}
	targets, err := collectTargetsWithRIDs(ctx, ts, p.Access, schema)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, tgt := range targets {
		if err := ctx.checkCancel(); err != nil {
			return n, err
		}
		if err := DeleteRow(ctx, ts, tgt.rid, tgt.row, cat); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// DeleteRow removes one row, maintaining indexes, statistics and undo. On
// a versioned table the delete is logical: a tombstone version goes onto
// the chain, the heap record and index entries stay for older snapshots,
// and every index entry is registered for deferred removal once the
// tombstone's commit passes the version-garbage watermark.
func DeleteRow(ctx *Ctx, ts *TableStore, rid storage.RID, row Row, cat *catalog.Catalog) error {
	if ts.Vers != nil {
		var txnID int64
		if ctx.Txn != nil {
			txnID = int64(ctx.Txn.ID)
		}
		v := ts.Vers.Tombstone(rid, txnID)
		if ctx.Txn != nil {
			ctx.Txn.OnCommit(v.SetCommit)
		} else {
			v.SetCommit(storage.BaseCommitTS)
		}
		anchor := ts.Vers.Anchor(rid)
		for _, ix := range ts.Meta.Indexes {
			if ts.Indexes[ix.Name] == nil {
				continue
			}
			ts.Vers.AddPending(rid, ix.Name, ts.IndexKey(ix, row), anchor, v)
		}
		if cat != nil {
			cat.AddRows(ts.Meta.Name, -1)
		}
		if ctx.Txn != nil {
			rowCopy := row.Clone()
			ctx.Txn.OnRollback(func() error {
				cur := ts.Vers.CurrentRID(rid)
				for _, ix := range ts.Meta.Indexes {
					if ts.Indexes[ix.Name] == nil {
						continue
					}
					ts.Vers.TakePending(cur, ix.Name, ts.IndexKey(ix, rowCopy))
				}
				ts.Vers.Pop(cur)
				if cat != nil {
					cat.AddRows(ts.Meta.Name, 1)
				}
				return nil
			})
		}
		return nil
	}
	if err := ts.Heap.Delete(rid); err != nil {
		return err
	}
	for _, ix := range ts.Meta.Indexes {
		if bt := ts.Indexes[ix.Name]; bt != nil {
			bt.Delete(ts.IndexKey(ix, row), rid)
		}
	}
	if cat != nil {
		cat.AddRows(ts.Meta.Name, -1)
	}
	if ctx.Txn != nil {
		rowCopy := row.Clone()
		ctx.Txn.OnRollback(func() error {
			newRid, err := ts.Heap.Insert(EncodeRow(rowCopy))
			if err != nil {
				return err
			}
			for _, ix := range ts.Meta.Indexes {
				if bt := ts.Indexes[ix.Name]; bt != nil {
					if err := bt.Insert(ts.IndexKey(ix, rowCopy), newRid); err != nil {
						return err
					}
				}
			}
			if cat != nil {
				cat.AddRows(ts.Meta.Name, 1)
			}
			return nil
		})
	}
	return nil
}
