package exec

import (
	"bytes"
	"fmt"

	"sqlcm/internal/catalog"
	"sqlcm/internal/plan"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/storage"
)

// DML execution. Statement errors leave the transaction's undo log with the
// inverse of every row change applied so far; the engine responds to a DML
// error by rolling back the transaction (statement-level atomicity is
// subsumed by transaction rollback, a behaviour documented in DESIGN.md).

// ExecInsert runs an insert plan, returning the number of rows inserted.
//
//sqlcm:cancellable
func ExecInsert(ctx *Ctx, sp StoreProvider, p *plan.PhysInsert, cat *catalog.Catalog) (int64, error) {
	ts, err := sp.Store(p.Table.Name)
	if err != nil {
		return 0, err
	}
	evalsPerRow := make([][]Evaluator, len(p.RowsSrc))
	for i, row := range p.RowsSrc {
		// A multi-row INSERT can carry arbitrarily many rows: the compile
		// loop is a statement-deadline boundary just like the apply loop.
		if err := ctx.checkCancel(); err != nil {
			return 0, err
		}
		evalsPerRow[i] = make([]Evaluator, len(row))
		//sqlcm:allow bounded by one row's width
		for j, e := range row {
			ev, err := Compile(e, nil)
			if err != nil {
				return 0, err
			}
			evalsPerRow[i][j] = ev
		}
	}
	var n int64
	for _, evals := range evalsPerRow {
		if err := ctx.checkCancel(); err != nil {
			return n, err
		}
		row := make(Row, len(p.Table.Columns))
		//sqlcm:allow bounded by the table's column count
		for i := range row {
			row[i] = sqltypes.Null
		}
		//sqlcm:allow bounded by one row's width
		for j, ev := range evals {
			v, err := ev.Eval(nil, ctx.Params)
			if err != nil {
				return n, err
			}
			cv, err := CoerceValue(p.Table.Columns[p.Columns[j]].Type, v)
			if err != nil {
				return n, fmt.Errorf("column %q: %w", p.Table.Columns[p.Columns[j]].Name, err)
			}
			row[p.Columns[j]] = cv
		}
		if err := InsertRow(ctx, ts, row, cat); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// InsertRow inserts one fully materialized row into a table store,
// maintaining indexes, NOT NULL constraints, statistics and the undo log.
// It is also the entry point used by the engine for programmatic inserts
// (e.g. persisting LATs).
func InsertRow(ctx *Ctx, ts *TableStore, row Row, cat *catalog.Catalog) error {
	meta := ts.Meta
	if len(row) != len(meta.Columns) {
		return fmt.Errorf("exec: row width %d != %d columns of %q", len(row), len(meta.Columns), meta.Name)
	}
	for i, col := range meta.Columns {
		if col.NotNull && row[i].IsNull() {
			return fmt.Errorf("exec: NULL in NOT NULL column %q of %q", col.Name, meta.Name)
		}
	}
	rec := EncodeRow(row)
	rid, err := ts.Heap.Insert(rec)
	if err != nil {
		return err
	}
	// Maintain indexes; unwind on unique violation.
	var done []*catalog.Index
	for _, ix := range meta.Indexes {
		bt := ts.Indexes[ix.Name]
		if bt == nil {
			continue
		}
		if err := bt.Insert(ts.IndexKey(ix, row), rid); err != nil {
			for _, u := range done {
				ts.Indexes[u.Name].Delete(ts.IndexKey(u, row), rid)
			}
			if derr := ts.Heap.Delete(rid); derr != nil {
				return fmt.Errorf("exec: unwind failed (%v) after: %w", derr, err)
			}
			return fmt.Errorf("exec: %s on %q: %w", ix.Name, meta.Name, err)
		}
		done = append(done, ix)
	}
	if cat != nil {
		cat.AddRows(meta.Name, 1)
	}
	if ctx.Txn != nil {
		rowCopy := row.Clone()
		ctx.Txn.OnRollback(func() error {
			for _, ix := range meta.Indexes {
				if bt := ts.Indexes[ix.Name]; bt != nil {
					bt.Delete(ts.IndexKey(ix, rowCopy), rid)
				}
			}
			if cat != nil {
				cat.AddRows(meta.Name, -1)
			}
			return ts.Heap.Delete(rid)
		})
	}
	return nil
}

// targetRow is a row located for update/delete.
type targetRow struct {
	rid storage.RID
	row Row
}

// collectTargetsWithRIDs materializes the (rid, row) pairs matched by an
// access path. DML collects all targets before mutating so the scan never
// observes its own writes (Halloween protection).
//
//sqlcm:cancellable
func collectTargetsWithRIDs(ctx *Ctx, ts *TableStore, access *plan.AccessPath, schema []plan.ColMeta) ([]targetRow, error) {
	var residual Evaluator
	if access.Residual != nil {
		ev, err := Compile(access.Residual, schema)
		if err != nil {
			return nil, err
		}
		residual = ev
	}
	ncols := len(ts.Meta.Columns)
	var out []targetRow
	appendIfMatch := func(rid storage.RID, rec []byte) error {
		row, err := DecodeRow(rec, ncols)
		if err != nil {
			return err
		}
		ctx.RowsExamined++
		if residual != nil {
			ok, err := EvalBool(residual, row, ctx.Params)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		out = append(out, targetRow{rid: rid, row: row})
		return nil
	}

	if access.Index == nil {
		var innerErr error
		err := ts.Heap.Scan(func(rid storage.RID, rec []byte) bool {
			if err := ctx.checkCancel(); err != nil {
				innerErr = err
				return false
			}
			if err := appendIfMatch(rid, rec); err != nil {
				innerErr = err
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		return out, innerErr
	}

	bt := ts.Indexes[access.Index.Name]
	if bt == nil {
		return nil, fmt.Errorf("exec: index %q has no storage", access.Index.Name)
	}
	var eqVals []sqltypes.Value
	//sqlcm:allow bounded by the index's key width
	for _, e := range access.Eq {
		ev, err := Compile(e, nil)
		if err != nil {
			return nil, err
		}
		v, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return nil, err
		}
		eqVals = append(eqVals, v)
	}
	prefix := sqltypes.EncodeKey(eqVals...)
	lo, hi := prefix, prefix
	loIncl, hiIncl := true, true
	if access.Lo != nil {
		ev, err := Compile(access.Lo, nil)
		if err != nil {
			return nil, err
		}
		v, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return nil, err
		}
		lo = v.Encode(append([]byte(nil), prefix...))
		loIncl = access.LoIncl
	}
	if access.Hi != nil {
		ev, err := Compile(access.Hi, nil)
		if err != nil {
			return nil, err
		}
		v, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return nil, err
		}
		hi = v.Encode(append([]byte(nil), prefix...))
		hiIncl = access.HiIncl
	} else if access.Lo != nil || len(eqVals) < len(access.Index.Columns) {
		hi = prefixSuccessor(prefix)
		hiIncl = false
	}
	var rids []storage.RID
	bt.ScanRange(lo, hi, loIncl, hiIncl, func(k []byte, rid storage.RID) bool {
		rids = append(rids, rid)
		return true
	})
	for _, rid := range rids {
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		rec, err := ts.Heap.Get(rid)
		if err != nil {
			continue // deleted concurrently within our txn's view
		}
		if err := appendIfMatch(rid, rec); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExecUpdate runs an update plan, returning the number of rows changed.
//
//sqlcm:cancellable
func ExecUpdate(ctx *Ctx, sp StoreProvider, p *plan.PhysUpdate, cat *catalog.Catalog) (int64, error) {
	ts, err := sp.Store(p.Table.Name)
	if err != nil {
		return 0, err
	}
	schema := make([]plan.ColMeta, len(ts.Meta.Columns))
	//sqlcm:allow bounded by the table's column count
	for i, c := range ts.Meta.Columns {
		schema[i] = plan.ColMeta{Qual: ts.Meta.Name, Name: c.Name}
	}
	targets, err := collectTargetsWithRIDs(ctx, ts, p.Access, schema)
	if err != nil {
		return 0, err
	}
	setEvals := make([]Evaluator, len(p.Sets))
	//sqlcm:allow bounded by the statement's SET list
	for i, s := range p.Sets {
		ev, err := Compile(s.Expr, schema)
		if err != nil {
			return 0, err
		}
		setEvals[i] = ev
	}
	var n int64
	for _, tgt := range targets {
		if err := ctx.checkCancel(); err != nil {
			return n, err
		}
		newRow := tgt.row.Clone()
		//sqlcm:allow bounded by the statement's SET list
		for i, s := range p.Sets {
			v, err := setEvals[i].Eval(tgt.row, ctx.Params)
			if err != nil {
				return n, err
			}
			cv, err := CoerceValue(ts.Meta.Columns[s.Column].Type, v)
			if err != nil {
				return n, fmt.Errorf("column %q: %w", ts.Meta.Columns[s.Column].Name, err)
			}
			if ts.Meta.Columns[s.Column].NotNull && cv.IsNull() {
				return n, fmt.Errorf("exec: NULL in NOT NULL column %q", ts.Meta.Columns[s.Column].Name)
			}
			newRow[s.Column] = cv
		}
		if _, err := updateRow(ctx, ts, tgt.rid, tgt.row, newRow, cat, true); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// updateRow replaces oldRow (at rid) with newRow, fixing indexes and
// optionally recording undo. Returns the row's new RID.
func updateRow(ctx *Ctx, ts *TableStore, rid storage.RID, oldRow, newRow Row, cat *catalog.Catalog, recordUndo bool) (storage.RID, error) {
	newRid, err := ts.Heap.Update(rid, EncodeRow(newRow))
	if err != nil {
		return rid, err
	}
	for _, ix := range ts.Meta.Indexes {
		bt := ts.Indexes[ix.Name]
		if bt == nil {
			continue
		}
		oldKey := ts.IndexKey(ix, oldRow)
		newKey := ts.IndexKey(ix, newRow)
		if bytes.Equal(oldKey, newKey) && newRid == rid {
			continue
		}
		bt.Delete(oldKey, rid)
		if err := bt.Insert(newKey, newRid); err != nil {
			// Unique violation: restore the index entry and the heap row,
			// then surface the error (caller aborts the transaction).
			bt.Insert(oldKey, newRid) //nolint:errcheck // restoring prior state
			if _, rerr := ts.Heap.Update(newRid, EncodeRow(oldRow)); rerr != nil {
				return rid, fmt.Errorf("exec: unwind failed (%v) after: %w", rerr, err)
			}
			return rid, fmt.Errorf("exec: %s on %q: %w", ix.Name, ts.Meta.Name, err)
		}
	}
	if recordUndo && ctx.Txn != nil {
		oldCopy := oldRow.Clone()
		newCopy := newRow.Clone()
		finalRid := newRid
		ctx.Txn.OnRollback(func() error {
			_, err := updateRow(ctx, ts, finalRid, newCopy, oldCopy, cat, false)
			return err
		})
	}
	return newRid, nil
}

// ExecDelete runs a delete plan, returning the number of rows removed.
//
//sqlcm:cancellable
func ExecDelete(ctx *Ctx, sp StoreProvider, p *plan.PhysDelete, cat *catalog.Catalog) (int64, error) {
	ts, err := sp.Store(p.Table.Name)
	if err != nil {
		return 0, err
	}
	schema := make([]plan.ColMeta, len(ts.Meta.Columns))
	//sqlcm:allow bounded by the table's column count
	for i, c := range ts.Meta.Columns {
		schema[i] = plan.ColMeta{Qual: ts.Meta.Name, Name: c.Name}
	}
	targets, err := collectTargetsWithRIDs(ctx, ts, p.Access, schema)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, tgt := range targets {
		if err := ctx.checkCancel(); err != nil {
			return n, err
		}
		if err := DeleteRow(ctx, ts, tgt.rid, tgt.row, cat); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// DeleteRow removes one row, maintaining indexes, statistics and undo.
func DeleteRow(ctx *Ctx, ts *TableStore, rid storage.RID, row Row, cat *catalog.Catalog) error {
	if err := ts.Heap.Delete(rid); err != nil {
		return err
	}
	for _, ix := range ts.Meta.Indexes {
		if bt := ts.Indexes[ix.Name]; bt != nil {
			bt.Delete(ts.IndexKey(ix, row), rid)
		}
	}
	if cat != nil {
		cat.AddRows(ts.Meta.Name, -1)
	}
	if ctx.Txn != nil {
		rowCopy := row.Clone()
		ctx.Txn.OnRollback(func() error {
			newRid, err := ts.Heap.Insert(EncodeRow(rowCopy))
			if err != nil {
				return err
			}
			for _, ix := range ts.Meta.Indexes {
				if bt := ts.Indexes[ix.Name]; bt != nil {
					if err := bt.Insert(ts.IndexKey(ix, rowCopy), newRid); err != nil {
						return err
					}
				}
			}
			if cat != nil {
				cat.AddRows(ts.Meta.Name, 1)
			}
			return nil
		})
	}
	return nil
}
