package exec

import (
	"fmt"
	"testing"

	"sqlcm/internal/sqltypes"
)

// TestAddIndexBuildsAfterScan is the regression test for the lock-order
// fix in AddIndex: the B+tree is populated after Heap.Scan returns, not
// inside the scan callback (which runs under the page read-latch, and
// index.btree must stay a root class of the declared lock hierarchy).
// Functionally this means an index built over an existing heap must see
// every row, including rows spanning multiple pages, and duplicate keys
// on a unique index must surface as a build error rather than a partial
// index.
func TestAddIndexBuildsAfterScan(t *testing.T) {
	h := newHarness(t)
	h.mustExec("CREATE TABLE t (id INT PRIMARY KEY, grp INT, pad STRING)", nil)

	// Enough rows with wide padding to span several heap pages.
	const n = 500
	pad := make([]byte, 200)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < n; i++ {
		h.mustExec(fmt.Sprintf("INSERT INTO t (id, grp, pad) VALUES (%d, %d, '%s')", i, i%7, pad), nil)
	}

	h.mustExec("CREATE INDEX t_grp ON t (grp)", nil)

	ts, err := h.reg.Store("t")
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	bt, ok := ts.Indexes["t_grp"]
	if !ok {
		t.Fatalf("index t_grp not registered")
	}

	// Every row must be reachable through the freshly built index.
	total := 0
	for g := 0; g < 7; g++ {
		key := sqltypes.EncodeKey(sqltypes.NewInt(int64(g)))
		total += len(bt.GetAll(key))
	}
	if total != n {
		t.Fatalf("index covers %d rows, want %d", total, n)
	}

	// A unique index over a column with duplicates must fail the build
	// and must not be registered.
	if _, _, err := h.exec("CREATE UNIQUE INDEX t_grp_u ON t (grp)", nil); err == nil {
		t.Fatalf("unique index over duplicate keys built without error")
	}
	if _, ok := ts.Indexes["t_grp_u"]; ok {
		t.Fatalf("failed unique index was registered anyway")
	}
}
