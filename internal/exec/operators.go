package exec

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"sqlcm/internal/plan"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/storage"
	"sqlcm/internal/txn"
)

// Ctx carries per-execution state through the operator tree.
type Ctx struct {
	Txn    *txn.Txn
	Params map[string]sqltypes.Value

	// Snap, when non-nil, makes scans of versioned tables resolve rows
	// through their version chains at this snapshot instead of reading
	// the heap — the MVCC read path, which takes no table locks.
	Snap *storage.Snapshot

	// RowsExamined counts base-table rows touched (a probe source for the
	// monitor).
	RowsExamined int64
	// MaxChain tracks the longest version-chain walk the statement
	// performed (the Version_Chain_Length probe).
	MaxChain int
}

// noteDepth records a version-chain walk length.
func (c *Ctx) noteDepth(d int) {
	if d > c.MaxChain {
		c.MaxChain = d
	}
}

// snapFor returns the snapshot to resolve ts through, or nil for the
// legacy heap path (non-versioned table or current-mode execution).
func (c *Ctx) snapFor(ts *TableStore) *storage.Snapshot {
	if c.Snap != nil && ts.Vers != nil {
		return c.Snap
	}
	return nil
}

// checkCancel polls the transaction's cancellation flag.
//
//sqlcm:cancelpoint
func (c *Ctx) checkCancel() error {
	if c.Txn == nil {
		return nil
	}
	return c.Txn.CheckCancelled()
}

// Operator is a Volcano-style iterator.
type Operator interface {
	// Open prepares the operator for iteration.
	Open(ctx *Ctx) error
	// Next returns the next row, or nil at end of input. Every
	// implementation polls the transaction's cancellation flag at its
	// iteration boundary, so a loop draining an operator is cancellable
	// by construction.
	//sqlcm:cancelpoint
	Next(ctx *Ctx) (Row, error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// Build compiles a physical plan into an operator tree. DML plans are not
// handled here (see dml.go).
func Build(p plan.Physical, sp StoreProvider) (Operator, error) {
	switch n := p.(type) {
	case *plan.PhysScan:
		ts, err := sp.Store(n.Table.Name)
		if err != nil {
			return nil, err
		}
		return newScanOp(ts, n.Access, n.Schema())
	case *plan.PhysFilter:
		child, err := Build(n.Child, sp)
		if err != nil {
			return nil, err
		}
		pred, err := Compile(n.Pred, n.Child.Schema())
		if err != nil {
			return nil, err
		}
		return &filterOp{child: child, pred: pred}, nil
	case *plan.PhysProject:
		child, err := Build(n.Child, sp)
		if err != nil {
			return nil, err
		}
		evals := make([]Evaluator, len(n.Items))
		for i, it := range n.Items {
			ev, err := Compile(it.Expr, n.Child.Schema())
			if err != nil {
				return nil, err
			}
			evals[i] = ev
		}
		return &projectOp{child: child, evals: evals}, nil
	case *plan.PhysHashJoin:
		return newHashJoinOp(n, sp)
	case *plan.PhysIndexNLJoin:
		return newIndexNLJoinOp(n, sp)
	case *plan.PhysNLJoin:
		return newNLJoinOp(n, sp)
	case *plan.PhysHashAgg:
		return newHashAggOp(n, sp)
	case *plan.PhysSort:
		return newSortOp(n, sp)
	case *plan.PhysLimit:
		child, err := Build(n.Child, sp)
		if err != nil {
			return nil, err
		}
		return &limitOp{child: child, n: n.N}, nil
	case *plan.PhysValues:
		evals := make([]Evaluator, len(n.Items))
		for i, it := range n.Items {
			ev, err := Compile(it.Expr, nil)
			if err != nil {
				return nil, err
			}
			evals[i] = ev
		}
		return &valuesOp{evals: evals}, nil
	default:
		return nil, fmt.Errorf("exec: no operator for %T", p)
	}
}

// Run drains an operator, returning all rows.
//
//sqlcm:cancellable
func Run(op Operator, ctx *Ctx) ([]Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Row
	for {
		row, err := op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

type scanOp struct {
	store    *TableStore
	access   *plan.AccessPath
	residual Evaluator // compiled against the table schema
	eqEvals  []Evaluator
	loEval   Evaluator
	hiEval   Evaluator

	// sequential state
	pages   []storage.PageID
	pageIdx int
	buf     []Row // rows from the current page
	bufIdx  int

	// snapshot sequential state (versioned tables): rows materialized
	// from the chains at Open
	snapRows []storage.ChainRow
	snapIdx  int

	// index state
	useIndex bool
	rids     []storage.RID
	keys     [][]byte // entry keys parallel to rids (snapshot recheck)
	ridIdx   int
}

func newScanOp(ts *TableStore, access *plan.AccessPath, schema []plan.ColMeta) (*scanOp, error) {
	op := &scanOp{store: ts, access: access}
	if access.Residual != nil {
		ev, err := Compile(access.Residual, schema)
		if err != nil {
			return nil, err
		}
		op.residual = ev
	}
	if access.Index != nil {
		op.useIndex = true
		for _, e := range access.Eq {
			ev, err := Compile(e, nil)
			if err != nil {
				return nil, err
			}
			op.eqEvals = append(op.eqEvals, ev)
		}
		if access.Lo != nil {
			ev, err := Compile(access.Lo, nil)
			if err != nil {
				return nil, err
			}
			op.loEval = ev
		}
		if access.Hi != nil {
			ev, err := Compile(access.Hi, nil)
			if err != nil {
				return nil, err
			}
			op.hiEval = ev
		}
	}
	return op, nil
}

func (s *scanOp) Open(ctx *Ctx) error {
	s.bufIdx, s.pageIdx, s.ridIdx, s.snapIdx = 0, 0, 0, 0
	s.buf, s.rids, s.keys, s.snapRows = nil, nil, nil, nil
	if !s.useIndex {
		if snap := ctx.snapFor(s.store); snap != nil {
			s.snapRows = s.store.Vers.SnapScan(*snap)
			return nil
		}
		s.pages = s.store.Heap.PageIDs()
		return nil
	}
	bt, ok := s.store.Indexes[s.access.Index.Name]
	if !ok {
		return fmt.Errorf("exec: index %q has no storage", s.access.Index.Name)
	}
	// Evaluate the key bounds.
	var eqVals []sqltypes.Value
	for _, ev := range s.eqEvals {
		v, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return err
		}
		eqVals = append(eqVals, v)
	}
	prefix := sqltypes.EncodeKey(eqVals...)
	lo := prefix
	hi := prefix
	loIncl, hiIncl := true, true
	switch {
	case s.loEval != nil || s.hiEval != nil:
		if s.loEval != nil {
			v, err := s.loEval.Eval(nil, ctx.Params)
			if err != nil {
				return err
			}
			lo = v.Encode(append([]byte(nil), prefix...))
			loIncl = s.access.LoIncl
		} else if len(prefix) == 0 {
			lo = nil
		}
		if s.hiEval != nil {
			v, err := s.hiEval.Eval(nil, ctx.Params)
			if err != nil {
				return err
			}
			hi = v.Encode(append([]byte(nil), prefix...))
			hiIncl = s.access.HiIncl
		} else if len(prefix) == 0 {
			hi = nil
		} else {
			// prefix + open-ended range: scan to the end of the prefix via
			// the prefix-successor trick.
			hi = prefixSuccessor(prefix)
			hiIncl = false
		}
	case len(eqVals) < len(s.access.Index.Columns):
		// Equality on a proper key prefix: widen to the whole prefix range.
		hi = prefixSuccessor(prefix)
		hiIncl = false
	}
	snapScan := ctx.snapFor(s.store) != nil
	bt.ScanRange(lo, hi, loIncl, hiIncl, func(k []byte, rid storage.RID) bool {
		s.rids = append(s.rids, rid)
		if snapScan {
			s.keys = append(s.keys, append([]byte(nil), k...))
		}
		return true
	})
	return nil
}

// prefixSuccessor returns the smallest byte string greater than every string
// with the given prefix.
func prefixSuccessor(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xff {
			out[i]++
			return out[:i+1]
		}
	}
	return nil // prefix is all 0xff: no upper bound
}

//sqlcm:cancellable
func (s *scanOp) Next(ctx *Ctx) (Row, error) {
	ncols := len(s.store.Meta.Columns)
	snap := ctx.snapFor(s.store)
	if s.useIndex {
		for s.ridIdx < len(s.rids) {
			if err := ctx.checkCancel(); err != nil {
				return nil, err
			}
			rid := s.rids[s.ridIdx]
			i := s.ridIdx
			s.ridIdx++
			var rec []byte
			if snap != nil {
				r, depth, ok := s.store.Vers.ReadAt(rid, *snap)
				ctx.noteDepth(depth)
				if !ok {
					// Invisible to the snapshot (uncommitted, newer, or
					// deleted); skip.
					continue
				}
				rec = r
			} else {
				r, err := s.store.Heap.Get(rid)
				if err != nil {
					// The row may have been deleted between index scan and
					// fetch within our own transaction (no cursor stability
					// needed); skip.
					continue
				}
				rec = r
			}
			row, err := DecodeRow(rec, ncols)
			if err != nil {
				return nil, err
			}
			if snap != nil && !bytes.Equal(s.store.IndexKey(s.access.Index, row), s.keys[i]) {
				// Stale entry: the visible version carries a different key
				// (deferred index cleanup); the matching key's own entry
				// locates this row if it qualifies.
				continue
			}
			ctx.RowsExamined++
			if s.residual != nil {
				ok, err := EvalBool(s.residual, row, ctx.Params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return row, nil
		}
		return nil, nil
	}
	if snap != nil {
		for s.snapIdx < len(s.snapRows) {
			if err := ctx.checkCancel(); err != nil {
				return nil, err
			}
			cr := s.snapRows[s.snapIdx]
			s.snapIdx++
			ctx.noteDepth(cr.Depth)
			row, err := DecodeRow(cr.Rec, ncols)
			if err != nil {
				return nil, err
			}
			ctx.RowsExamined++
			if s.residual != nil {
				ok, err := EvalBool(s.residual, row, ctx.Params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return row, nil
		}
		return nil, nil
	}
	for {
		//sqlcm:allow bounded by one page of buffered rows; the outer page loop polls
		for s.bufIdx < len(s.buf) {
			row := s.buf[s.bufIdx]
			s.bufIdx++
			ctx.RowsExamined++
			if s.residual != nil {
				ok, err := EvalBool(s.residual, row, ctx.Params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return row, nil
		}
		if s.pageIdx >= len(s.pages) {
			return nil, nil
		}
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		pid := s.pages[s.pageIdx]
		s.pageIdx++
		s.buf = s.buf[:0]
		s.bufIdx = 0
		var decodeErr error
		err := s.store.Heap.ScanPage(pid, func(rid storage.RID, rec []byte) bool {
			row, err := DecodeRow(rec, ncols)
			if err != nil {
				decodeErr = err
				return false
			}
			s.buf = append(s.buf, row)
			return true
		})
		if err != nil {
			return nil, err
		}
		if decodeErr != nil {
			return nil, decodeErr
		}
	}
}

func (s *scanOp) Close() error { return nil }

// ---------------------------------------------------------------------------
// Filter / Project / Limit / Values
// ---------------------------------------------------------------------------

type filterOp struct {
	child Operator
	pred  Evaluator
}

func (f *filterOp) Open(ctx *Ctx) error { return f.child.Open(ctx) }

func (f *filterOp) Next(ctx *Ctx) (Row, error) {
	for {
		row, err := f.child.Next(ctx)
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := EvalBool(f.pred, row, ctx.Params)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

type projectOp struct {
	child Operator
	evals []Evaluator
}

func (p *projectOp) Open(ctx *Ctx) error { return p.child.Open(ctx) }

func (p *projectOp) Next(ctx *Ctx) (Row, error) {
	row, err := p.child.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	out := make(Row, len(p.evals))
	for i, ev := range p.evals {
		v, err := ev.Eval(row, ctx.Params)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *projectOp) Close() error { return p.child.Close() }

type limitOp struct {
	child Operator
	n     int64
	seen  int64
}

func (l *limitOp) Open(ctx *Ctx) error {
	l.seen = 0
	return l.child.Open(ctx)
}

func (l *limitOp) Next(ctx *Ctx) (Row, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	row, err := l.child.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

func (l *limitOp) Close() error { return l.child.Close() }

type valuesOp struct {
	evals []Evaluator
	done  bool
}

func (v *valuesOp) Open(ctx *Ctx) error {
	v.done = false
	return nil
}

func (v *valuesOp) Next(ctx *Ctx) (Row, error) {
	if v.done {
		return nil, nil
	}
	v.done = true
	out := make(Row, len(v.evals))
	for i, ev := range v.evals {
		val, err := ev.Eval(nil, ctx.Params)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}

func (v *valuesOp) Close() error { return nil }

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

type hashJoinOp struct {
	left, right Operator
	leftKeys    []Evaluator
	rightKeys   []Evaluator
	residual    Evaluator

	table   map[string][]Row
	current []Row // pending matches for the current left row
	curIdx  int
	leftRow Row
}

func newHashJoinOp(n *plan.PhysHashJoin, sp StoreProvider) (Operator, error) {
	left, err := Build(n.Left, sp)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Right, sp)
	if err != nil {
		return nil, err
	}
	op := &hashJoinOp{left: left, right: right}
	for _, k := range n.LeftKeys {
		ev, err := Compile(k, n.Left.Schema())
		if err != nil {
			return nil, err
		}
		op.leftKeys = append(op.leftKeys, ev)
	}
	for _, k := range n.RightKeys {
		ev, err := Compile(k, n.Right.Schema())
		if err != nil {
			return nil, err
		}
		op.rightKeys = append(op.rightKeys, ev)
	}
	if n.Residual != nil {
		ev, err := Compile(n.Residual, n.Schema())
		if err != nil {
			return nil, err
		}
		op.residual = ev
	}
	return op, nil
}

func (j *hashJoinOp) Open(ctx *Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[string][]Row)
	j.current, j.leftRow = nil, nil
	j.curIdx = 0
	for {
		row, err := j.right.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key, null, err := evalKey(j.rightKeys, row, ctx.Params)
		if err != nil {
			return err
		}
		if null {
			continue // NULL keys never join
		}
		j.table[key] = append(j.table[key], row)
	}
	return nil
}

func evalKey(evals []Evaluator, row Row, params map[string]sqltypes.Value) (string, bool, error) {
	vals := make([]sqltypes.Value, len(evals))
	for i, ev := range evals {
		v, err := ev.Eval(row, params)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		vals[i] = normalizeKeyValue(v)
	}
	return string(sqltypes.EncodeKey(vals...)), false, nil
}

// normalizeKeyValue folds numerics so INT 3 and FLOAT 3.0 produce the same
// join/group key, matching Compare semantics.
func normalizeKeyValue(v sqltypes.Value) sqltypes.Value {
	switch v.Kind() {
	case sqltypes.KindBool:
		return sqltypes.NewInt(v.Int())
	case sqltypes.KindFloat:
		if f := v.Float(); f == float64(int64(f)) {
			return sqltypes.NewInt(int64(f))
		}
	}
	return v
}

func (j *hashJoinOp) Next(ctx *Ctx) (Row, error) {
	for {
		for j.curIdx < len(j.current) {
			rightRow := j.current[j.curIdx]
			j.curIdx++
			joined := append(append(Row{}, j.leftRow...), rightRow...)
			if j.residual != nil {
				ok, err := EvalBool(j.residual, joined, ctx.Params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return joined, nil
		}
		row, err := j.left.Next(ctx)
		if err != nil || row == nil {
			return nil, err
		}
		key, null, err := evalKey(j.leftKeys, row, ctx.Params)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		j.leftRow = row
		j.current = j.table[key]
		j.curIdx = 0
	}
}

func (j *hashJoinOp) Close() error {
	j.table = nil
	err1 := j.left.Close()
	err2 := j.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

type indexNLJoinOp struct {
	outer    Operator
	store    *TableStore
	ix       string
	probes   []Evaluator
	residual Evaluator
	ncols    int

	outerRow Row
	matches  []Row
	matchIdx int
}

func newIndexNLJoinOp(n *plan.PhysIndexNLJoin, sp StoreProvider) (Operator, error) {
	outer, err := Build(n.Outer, sp)
	if err != nil {
		return nil, err
	}
	ts, err := sp.Store(n.Table.Name)
	if err != nil {
		return nil, err
	}
	op := &indexNLJoinOp{
		outer: outer,
		store: ts,
		ix:    n.Index.Name,
		ncols: len(n.Table.Columns),
	}
	for _, p := range n.ProbeExprs {
		ev, err := Compile(p, n.Outer.Schema())
		if err != nil {
			return nil, err
		}
		op.probes = append(op.probes, ev)
	}
	if n.Residual != nil {
		ev, err := Compile(n.Residual, n.Schema())
		if err != nil {
			return nil, err
		}
		op.residual = ev
	}
	return op, nil
}

func (j *indexNLJoinOp) Open(ctx *Ctx) error {
	j.outerRow, j.matches = nil, nil
	j.matchIdx = 0
	return j.outer.Open(ctx)
}

func (j *indexNLJoinOp) Next(ctx *Ctx) (Row, error) {
	bt, ok := j.store.Indexes[j.ix]
	if !ok {
		return nil, fmt.Errorf("exec: index %q has no storage", j.ix)
	}
	for {
		for j.matchIdx < len(j.matches) {
			inner := j.matches[j.matchIdx]
			j.matchIdx++
			joined := append(append(Row{}, j.outerRow...), inner...)
			if j.residual != nil {
				ok, err := EvalBool(j.residual, joined, ctx.Params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return joined, nil
		}
		row, err := j.outer.Next(ctx)
		if err != nil || row == nil {
			return nil, err
		}
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		vals := make([]sqltypes.Value, len(j.probes))
		null := false
		for i, p := range j.probes {
			v, err := p.Eval(row, ctx.Params)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			vals[i] = v
		}
		if null {
			continue
		}
		prefix := sqltypes.EncodeKey(vals...)
		var lo, hi []byte
		loIncl, hiIncl := true, true
		lo = prefix
		if len(vals) == len(j.store.Meta.IndexByName(j.ix).Columns) {
			hi = prefix
		} else {
			hi = prefixSuccessor(prefix)
			hiIncl = false
		}
		j.matches = j.matches[:0]
		j.matchIdx = 0
		snap := ctx.snapFor(j.store)
		ixMeta := j.store.Meta.IndexByName(j.ix)
		var innerErr error
		bt.ScanRange(lo, hi, loIncl, hiIncl, func(k []byte, rid storage.RID) bool {
			var rec []byte
			if snap != nil {
				r, depth, ok := j.store.Vers.ReadAt(rid, *snap)
				ctx.noteDepth(depth)
				if !ok {
					return true // invisible to the snapshot; skip
				}
				rec = r
			} else {
				r, err := j.store.Heap.Get(rid)
				if err != nil {
					return true // row vanished; skip
				}
				rec = r
			}
			inner, err := DecodeRow(rec, j.ncols)
			if err != nil {
				innerErr = err
				return false
			}
			if snap != nil && !bytes.Equal(j.store.IndexKey(ixMeta, inner), k) {
				return true // stale entry awaiting deferred cleanup; skip
			}
			ctx.RowsExamined++
			j.matches = append(j.matches, inner)
			return true
		})
		if innerErr != nil {
			return nil, innerErr
		}
		j.outerRow = row
	}
}

func (j *indexNLJoinOp) Close() error { return j.outer.Close() }

type nlJoinOp struct {
	left, right Operator
	on          Evaluator

	inner    []Row
	innerIdx int
	leftRow  Row
}

func newNLJoinOp(n *plan.PhysNLJoin, sp StoreProvider) (Operator, error) {
	left, err := Build(n.Left, sp)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Right, sp)
	if err != nil {
		return nil, err
	}
	op := &nlJoinOp{left: left, right: right}
	if n.On != nil {
		ev, err := Compile(n.On, n.Schema())
		if err != nil {
			return nil, err
		}
		op.on = ev
	}
	return op, nil
}

func (j *nlJoinOp) Open(ctx *Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	j.inner = nil
	for {
		row, err := j.right.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		j.inner = append(j.inner, row)
	}
	j.innerIdx = 0
	j.leftRow = nil
	return nil
}

func (j *nlJoinOp) Next(ctx *Ctx) (Row, error) {
	for {
		if j.leftRow == nil {
			row, err := j.left.Next(ctx)
			if err != nil || row == nil {
				return nil, err
			}
			j.leftRow = row
			j.innerIdx = 0
		}
		for j.innerIdx < len(j.inner) {
			if err := ctx.checkCancel(); err != nil {
				return nil, err
			}
			inner := j.inner[j.innerIdx]
			j.innerIdx++
			joined := append(append(Row{}, j.leftRow...), inner...)
			if j.on != nil {
				ok, err := EvalBool(j.on, joined, ctx.Params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return joined, nil
		}
		j.leftRow = nil
	}
}

func (j *nlJoinOp) Close() error {
	err1 := j.left.Close()
	err2 := j.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

type aggState struct {
	count     int64
	sum       float64
	sumSq     float64
	numeric   int64
	min       sqltypes.Value
	max       sqltypes.Value
	hasMinMax bool
}

type hashAggOp struct {
	child    Operator
	groupBys []Evaluator
	aggArgs  []Evaluator // nil for COUNT(*)
	aggNames []string
	having   Evaluator

	out    []Row
	outIdx int
}

func newHashAggOp(n *plan.PhysHashAgg, sp StoreProvider) (Operator, error) {
	child, err := Build(n.Child, sp)
	if err != nil {
		return nil, err
	}
	op := &hashAggOp{child: child}
	childSchema := n.Child.Schema()
	for _, g := range n.GroupBy {
		ev, err := Compile(g, childSchema)
		if err != nil {
			return nil, err
		}
		op.groupBys = append(op.groupBys, ev)
	}
	for _, ag := range n.Aggs {
		op.aggNames = append(op.aggNames, ag.Func.Name)
		if ag.Func.Star {
			op.aggArgs = append(op.aggArgs, nil)
			continue
		}
		if len(ag.Func.Args) != 1 {
			return nil, fmt.Errorf("exec: aggregate %s takes exactly one argument", ag.Func.Name)
		}
		ev, err := Compile(ag.Func.Args[0], childSchema)
		if err != nil {
			return nil, err
		}
		op.aggArgs = append(op.aggArgs, ev)
	}
	if n.Having != nil {
		ev, err := Compile(n.Having, n.Schema())
		if err != nil {
			return nil, err
		}
		op.having = ev
	}
	return op, nil
}

func (a *hashAggOp) Open(ctx *Ctx) error {
	if err := a.child.Open(ctx); err != nil {
		return err
	}
	type group struct {
		vals   []sqltypes.Value
		states []aggState
	}
	groups := map[string]*group{}
	var order []string
	for {
		row, err := a.child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		vals := make([]sqltypes.Value, len(a.groupBys))
		keyVals := make([]sqltypes.Value, len(a.groupBys))
		for i, ev := range a.groupBys {
			v, err := ev.Eval(row, ctx.Params)
			if err != nil {
				return err
			}
			vals[i] = v
			keyVals[i] = normalizeKeyValue(v)
		}
		key := string(sqltypes.EncodeKey(keyVals...))
		g := groups[key]
		if g == nil {
			g = &group{vals: vals, states: make([]aggState, len(a.aggArgs))}
			groups[key] = g
			order = append(order, key)
		}
		for i, argEv := range a.aggArgs {
			st := &g.states[i]
			if argEv == nil { // COUNT(*)
				st.count++
				continue
			}
			v, err := argEv.Eval(row, ctx.Params)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue // SQL aggregates skip NULLs (except COUNT(*))
			}
			st.count++
			if f, ok := v.AsFloat(); ok {
				st.sum += f
				st.sumSq += f * f
				st.numeric++
			}
			if !st.hasMinMax {
				st.min, st.max = v, v
				st.hasMinMax = true
			} else {
				if sqltypes.Compare(v, st.min) < 0 {
					st.min = v
				}
				if sqltypes.Compare(v, st.max) > 0 {
					st.max = v
				}
			}
		}
	}
	// Grand aggregate with no groups still yields one row.
	if len(a.groupBys) == 0 && len(groups) == 0 {
		groups[""] = &group{states: make([]aggState, len(a.aggArgs))}
		order = append(order, "")
	}
	a.out = a.out[:0]
	for _, key := range order {
		g := groups[key]
		row := make(Row, 0, len(g.vals)+len(g.states))
		row = append(row, g.vals...)
		for i, st := range g.states {
			row = append(row, finishAgg(a.aggNames[i], st))
		}
		if a.having != nil {
			ok, err := EvalBool(a.having, row, ctx.Params)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		a.out = append(a.out, row)
	}
	a.outIdx = 0
	return nil
}

func finishAgg(name string, st aggState) sqltypes.Value {
	switch name {
	case "COUNT":
		return sqltypes.NewInt(st.count)
	case "SUM":
		if st.numeric == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(st.sum)
	case "AVG":
		if st.numeric == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(st.sum / float64(st.numeric))
	case "STDEV":
		if st.numeric < 2 {
			return sqltypes.Null
		}
		n := float64(st.numeric)
		variance := (st.sumSq - st.sum*st.sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		return sqltypes.NewFloat(math.Sqrt(variance))
	case "MIN":
		if !st.hasMinMax {
			return sqltypes.Null
		}
		return st.min
	case "MAX":
		if !st.hasMinMax {
			return sqltypes.Null
		}
		return st.max
	default:
		return sqltypes.Null
	}
}

func (a *hashAggOp) Next(ctx *Ctx) (Row, error) {
	if a.outIdx >= len(a.out) {
		return nil, nil
	}
	row := a.out[a.outIdx]
	a.outIdx++
	return row, nil
}

func (a *hashAggOp) Close() error { return a.child.Close() }

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

type sortOp struct {
	child Operator
	evals []Evaluator
	descs []bool

	rows   []Row
	rowIdx int
}

func newSortOp(n *plan.PhysSort, sp StoreProvider) (Operator, error) {
	child, err := Build(n.Child, sp)
	if err != nil {
		return nil, err
	}
	op := &sortOp{child: child}
	for _, it := range n.Items {
		ev, err := Compile(it.Expr, n.Child.Schema())
		if err != nil {
			return nil, err
		}
		op.evals = append(op.evals, ev)
		op.descs = append(op.descs, it.Desc)
	}
	return op, nil
}

func (s *sortOp) Open(ctx *Ctx) error {
	if err := s.child.Open(ctx); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	type keyed struct {
		row  Row
		keys []sqltypes.Value
	}
	var items []keyed
	for {
		row, err := s.child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make([]sqltypes.Value, len(s.evals))
		for i, ev := range s.evals {
			v, err := ev.Eval(row, ctx.Params)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		items = append(items, keyed{row: row, keys: keys})
	}
	sort.SliceStable(items, func(i, j int) bool {
		for k := range s.evals {
			c := sqltypes.Compare(items[i].keys[k], items[j].keys[k])
			if c == 0 {
				continue
			}
			if s.descs[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, it := range items {
		s.rows = append(s.rows, it.row)
	}
	s.rowIdx = 0
	return nil
}

func (s *sortOp) Next(ctx *Ctx) (Row, error) {
	if s.rowIdx >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.rowIdx]
	s.rowIdx++
	return row, nil
}

func (s *sortOp) Close() error { return s.child.Close() }
