// Package exec implements the engine's execution layer: compiled
// expressions, Volcano-style operators for the physical plans produced by
// internal/plan, and DML execution with index maintenance and undo logging.
package exec

import (
	"fmt"
	"math"
	"strings"

	"sqlcm/internal/plan"
	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
)

// Row is one tuple of values.
type Row []sqltypes.Value

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Evaluator is a compiled expression.
type Evaluator interface {
	Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error)
}

type constEval struct{ v sqltypes.Value }

func (e constEval) Eval(Row, map[string]sqltypes.Value) (sqltypes.Value, error) { return e.v, nil }

type colEval struct{ ord int }

func (e colEval) Eval(row Row, _ map[string]sqltypes.Value) (sqltypes.Value, error) {
	if e.ord >= len(row) {
		return sqltypes.Null, fmt.Errorf("exec: column ordinal %d out of range (row width %d)", e.ord, len(row))
	}
	return row[e.ord], nil
}

type paramEval struct{ name string }

func (e paramEval) Eval(_ Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	v, ok := params[e.name]
	if !ok {
		return sqltypes.Null, fmt.Errorf("exec: unbound parameter @%s", e.name)
	}
	return v, nil
}

type arithEval struct {
	op   sqltypes.BinaryOp
	l, r Evaluator
}

func (e arithEval) Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	lv, err := e.l.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	rv, err := e.r.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.Arith(e.op, lv, rv)
}

type cmpEval struct {
	op   sqlparser.CmpOp
	l, r Evaluator
}

func (e cmpEval) Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	lv, err := e.l.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	rv, err := e.r.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	if lv.IsNull() || rv.IsNull() {
		return sqltypes.Null, nil // SQL three-valued logic
	}
	c := sqltypes.Compare(lv, rv)
	var out bool
	switch e.op {
	case sqlparser.CmpEq:
		out = c == 0
	case sqlparser.CmpNe:
		out = c != 0
	case sqlparser.CmpLt:
		out = c < 0
	case sqlparser.CmpLe:
		out = c <= 0
	case sqlparser.CmpGt:
		out = c > 0
	case sqlparser.CmpGe:
		out = c >= 0
	}
	return sqltypes.NewBool(out), nil
}

type logicEval struct {
	op   sqlparser.LogicOp
	l, r Evaluator
}

func (e logicEval) Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	lv, err := e.l.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	// Short-circuit with three-valued logic.
	if e.op == sqlparser.LogicAnd {
		if !lv.IsNull() && !truthy(lv) {
			return sqltypes.NewBool(false), nil
		}
	} else {
		if !lv.IsNull() && truthy(lv) {
			return sqltypes.NewBool(true), nil
		}
	}
	rv, err := e.r.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	if e.op == sqlparser.LogicAnd {
		switch {
		case !rv.IsNull() && !truthy(rv):
			return sqltypes.NewBool(false), nil
		case lv.IsNull() || rv.IsNull():
			return sqltypes.Null, nil
		default:
			return sqltypes.NewBool(true), nil
		}
	}
	switch {
	case !rv.IsNull() && truthy(rv):
		return sqltypes.NewBool(true), nil
	case lv.IsNull() || rv.IsNull():
		return sqltypes.Null, nil
	default:
		return sqltypes.NewBool(false), nil
	}
}

type notEval struct{ e Evaluator }

func (e notEval) Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	v, err := e.e.Eval(row, params)
	if err != nil || v.IsNull() {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(!truthy(v)), nil
}

type negEval struct{ e Evaluator }

func (e negEval) Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	v, err := e.e.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.Negate(v)
}

type isNullEval struct {
	e      Evaluator
	negate bool
}

func (e isNullEval) Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	v, err := e.e.Eval(row, params)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(v.IsNull() != e.negate), nil
}

type scalarFuncEval struct {
	name string
	args []Evaluator
}

func (e scalarFuncEval) Eval(row Row, params map[string]sqltypes.Value) (sqltypes.Value, error) {
	vals := make([]sqltypes.Value, len(e.args))
	for i, a := range e.args {
		v, err := a.Eval(row, params)
		if err != nil {
			return sqltypes.Null, err
		}
		vals[i] = v
	}
	switch e.name {
	case "ABS":
		if len(vals) != 1 {
			return sqltypes.Null, fmt.Errorf("exec: ABS takes 1 argument")
		}
		if vals[0].IsNull() {
			return sqltypes.Null, nil
		}
		switch vals[0].Kind() {
		case sqltypes.KindInt:
			n := vals[0].Int()
			if n < 0 {
				n = -n
			}
			return sqltypes.NewInt(n), nil
		case sqltypes.KindFloat:
			return sqltypes.NewFloat(math.Abs(vals[0].Float())), nil
		}
		return sqltypes.Null, fmt.Errorf("exec: ABS of %s", vals[0].Kind())
	case "LENGTH", "LEN":
		if len(vals) != 1 {
			return sqltypes.Null, fmt.Errorf("exec: %s takes 1 argument", e.name)
		}
		if vals[0].IsNull() {
			return sqltypes.Null, nil
		}
		if vals[0].Kind() != sqltypes.KindString {
			return sqltypes.Null, fmt.Errorf("exec: %s of %s", e.name, vals[0].Kind())
		}
		return sqltypes.NewInt(int64(len(vals[0].Str()))), nil
	case "UPPER":
		if len(vals) != 1 || vals[0].Kind() != sqltypes.KindString {
			if len(vals) == 1 && vals[0].IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.Null, fmt.Errorf("exec: UPPER needs one string argument")
		}
		return sqltypes.NewString(strings.ToUpper(vals[0].Str())), nil
	case "LOWER":
		if len(vals) != 1 || vals[0].Kind() != sqltypes.KindString {
			if len(vals) == 1 && vals[0].IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.Null, fmt.Errorf("exec: LOWER needs one string argument")
		}
		return sqltypes.NewString(strings.ToLower(vals[0].Str())), nil
	default:
		return sqltypes.Null, fmt.Errorf("exec: unknown function %s", e.name)
	}
}

// truthy interprets a value as a boolean condition.
func truthy(v sqltypes.Value) bool {
	switch v.Kind() {
	case sqltypes.KindBool, sqltypes.KindInt:
		return v.Int() != 0
	case sqltypes.KindFloat:
		return v.Float() != 0
	default:
		return false
	}
}

// ResolveColumn finds the ordinal of a column reference in a schema.
// Unqualified references must match exactly one column.
func ResolveColumn(c *sqlparser.ColumnRef, schema []plan.ColMeta) (int, error) {
	found := -1
	for i, m := range schema {
		if c.Table != "" {
			if m.Qual == c.Table && m.Name == c.Column {
				if found >= 0 {
					return 0, fmt.Errorf("exec: ambiguous column %s", c)
				}
				found = i
			}
			continue
		}
		if m.Name == c.Column {
			if found >= 0 {
				return 0, fmt.Errorf("exec: ambiguous column %s", c)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("exec: unknown column %s", c)
	}
	return found, nil
}

// Compile binds expr against schema. Aggregate function calls resolve to
// same-named output columns of the schema (as produced by PhysHashAgg), so
// HAVING and ORDER BY can reference aggregates.
func Compile(expr sqlparser.Expr, schema []plan.ColMeta) (Evaluator, error) {
	switch e := expr.(type) {
	case *sqlparser.Literal:
		return constEval{v: e.Val}, nil
	case *sqlparser.ColumnRef:
		ord, err := ResolveColumn(e, schema)
		if err != nil {
			return nil, err
		}
		return colEval{ord: ord}, nil
	case *sqlparser.Param:
		return paramEval{name: e.Name}, nil
	case *sqlparser.Arith:
		l, err := Compile(e.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(e.Right, schema)
		if err != nil {
			return nil, err
		}
		return arithEval{op: e.Op, l: l, r: r}, nil
	case *sqlparser.Comparison:
		l, err := Compile(e.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(e.Right, schema)
		if err != nil {
			return nil, err
		}
		return cmpEval{op: e.Op, l: l, r: r}, nil
	case *sqlparser.Logic:
		l, err := Compile(e.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(e.Right, schema)
		if err != nil {
			return nil, err
		}
		return logicEval{op: e.Op, l: l, r: r}, nil
	case *sqlparser.Not:
		inner, err := Compile(e.Expr, schema)
		if err != nil {
			return nil, err
		}
		return notEval{e: inner}, nil
	case *sqlparser.Neg:
		inner, err := Compile(e.Expr, schema)
		if err != nil {
			return nil, err
		}
		return negEval{e: inner}, nil
	case *sqlparser.IsNull:
		inner, err := Compile(e.Expr, schema)
		if err != nil {
			return nil, err
		}
		return isNullEval{e: inner, negate: e.Negate}, nil
	case *sqlparser.FuncCall:
		if sqlparser.AggregateFuncs[e.Name] {
			// Aggregates appear in scalar position only above a HashAgg,
			// whose schema exposes one column per aggregate named by the
			// call's textual form.
			name := e.String()
			for i, m := range schema {
				if m.Qual == "" && m.Name == name {
					return colEval{ord: i}, nil
				}
			}
			return nil, fmt.Errorf("exec: aggregate %s used outside aggregation context", name)
		}
		args := make([]Evaluator, len(e.Args))
		for i, a := range e.Args {
			ev, err := Compile(a, schema)
			if err != nil {
				return nil, err
			}
			args[i] = ev
		}
		return scalarFuncEval{name: e.Name, args: args}, nil
	default:
		return nil, fmt.Errorf("exec: cannot compile %T", expr)
	}
}

// EvalBool evaluates a compiled predicate with filter semantics: NULL is
// treated as false.
func EvalBool(ev Evaluator, row Row, params map[string]sqltypes.Value) (bool, error) {
	v, err := ev.Eval(row, params)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return truthy(v), nil
}
