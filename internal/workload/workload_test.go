package workload

import (
	"testing"
	"time"

	"sqlcm/internal/engine"
	"sqlcm/internal/sqltypes"
)

func smallConfig() Config {
	return Config{
		Lineitems:    2000,
		Orders:       500,
		Parts:        100,
		Seed:         42,
		ShortQueries: 200,
		JoinQueries:  4,
	}
}

func TestSetupAndCounts(t *testing.T) {
	eng, err := engine.Open(engine.Config{PoolPages: 1024, LockTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg, err := Setup(eng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession("t", "t")
	for table, want := range map[string]int64{
		"lineitem": int64(cfg.Lineitems),
		"orders":   int64(cfg.Orders),
		"part":     int64(cfg.Parts),
	} {
		res, err := sess.Exec("SELECT COUNT(*) FROM "+table, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Int(); got != want {
			t.Errorf("%s: %d rows, want %d", table, got, want)
		}
	}
}

func TestMixDeterministicAndShaped(t *testing.T) {
	cfg := smallConfig()
	a := Mix(cfg)
	b := Mix(cfg)
	if len(a) != len(b) || len(a) != cfg.ShortQueries+cfg.JoinQueries {
		t.Fatalf("mix sizes: %d vs %d", len(a), len(b))
	}
	joins := 0
	for i := range a {
		if a[i].SQL != b[i].SQL {
			t.Fatalf("non-deterministic SQL at %d", i)
		}
		for k, v := range a[i].Params {
			if sqltypes.Compare(b[i].Params[k], v) != 0 {
				t.Fatalf("non-deterministic param at %d", i)
			}
		}
		if a[i].Join {
			joins++
		}
	}
	if joins != cfg.JoinQueries {
		t.Fatalf("joins: %d, want %d", joins, cfg.JoinQueries)
	}
	// Different seed differs.
	cfg2 := cfg
	cfg2.Seed = 43
	c := Mix(cfg2)
	same := true
	for i := range a {
		for k := range a[i].Params {
			if sqltypes.Compare(c[i].Params[k], a[i].Params[k]) != 0 {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestRunWorkload(t *testing.T) {
	eng, err := engine.Open(engine.Config{PoolPages: 1024, LockTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg, err := Setup(eng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := Mix(cfg)
	n, err := Run(eng, queries, "bench", "tpch")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(queries) {
		t.Fatalf("executed %d of %d", n, len(queries))
	}
	// Join queries actually produce the advertised row counts (~1.5%).
	sess := eng.NewSession("t", "t")
	for _, q := range queries {
		if !q.Join {
			continue
		}
		res, err := sess.Exec(q.SQL, q.Params)
		if err != nil {
			t.Fatal(err)
		}
		span := cfg.Lineitems / 66
		if len(res.Rows) == 0 || len(res.Rows) > span {
			t.Fatalf("join rows: %d (span %d)", len(res.Rows), span)
		}
		break
	}
}
