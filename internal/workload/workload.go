// Package workload builds the paper's experimental workload (§6.2): a
// TPC-H-style schema (lineitem, orders, part) and a deterministic query
// mix of short single-row selections interleaved with multi-way join
// selections returning 1000–2000 rows.
//
// The paper used a 6M-row lineitem table on 2003-era hardware; the default
// scale here is 100k rows (configurable), preserving the relative costs the
// experiments measure.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"sqlcm/internal/engine"
	"sqlcm/internal/sqltypes"
)

// Config scales the generated database and workload.
type Config struct {
	// Lineitems is the lineitem row count (default 100_000).
	Lineitems int
	// Orders is the orders row count (default Lineitems/4).
	Orders int
	// Parts is the part row count (default 2_000).
	Parts int
	// Seed drives the deterministic generator.
	Seed int64
	// ShortQueries is the number of single-row selections (paper: 20_000).
	ShortQueries int
	// JoinQueries is the number of join selections (paper: 100).
	JoinQueries int
	// JoinEvery interleaves one join query after this many short queries.
	JoinEvery int
}

func (c Config) withDefaults() Config {
	if c.Lineitems == 0 {
		c.Lineitems = 100_000
	}
	if c.Orders == 0 {
		c.Orders = c.Lineitems / 4
	}
	if c.Parts == 0 {
		c.Parts = 2_000
	}
	if c.ShortQueries == 0 {
		c.ShortQueries = 20_000
	}
	if c.JoinQueries == 0 {
		c.JoinQueries = 100
	}
	if c.JoinEvery == 0 {
		c.JoinEvery = c.ShortQueries / maxInt(1, c.JoinQueries)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Setup creates and populates the TPC-H-style schema through the engine.
func Setup(eng *engine.Engine, cfg Config) (Config, error) {
	cfg = cfg.withDefaults()
	sess := eng.NewSession("loader", "workload")
	ddl := []string{
		`CREATE TABLE part (
			p_partkey INT PRIMARY KEY,
			p_name VARCHAR NOT NULL,
			p_retailprice FLOAT
		)`,
		`CREATE TABLE orders (
			o_orderkey INT PRIMARY KEY,
			o_custkey INT,
			o_totalprice FLOAT,
			o_status VARCHAR
		)`,
		`CREATE TABLE lineitem (
			l_id INT PRIMARY KEY,
			l_orderkey INT,
			l_partkey INT,
			l_quantity FLOAT,
			l_extendedprice FLOAT,
			l_comment VARCHAR
		)`,
		`CREATE INDEX idx_l_orderkey ON lineitem (l_orderkey)`,
	}
	for _, q := range ddl {
		if _, err := sess.Exec(q, nil); err != nil {
			return cfg, fmt.Errorf("workload: %s: %w", q[:30], err)
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	for i := 1; i <= cfg.Parts; i++ {
		err := insert(sess, "INSERT INTO part VALUES (@k, @n, @p)", map[string]sqltypes.Value{
			"k": sqltypes.NewInt(int64(i)),
			"n": sqltypes.NewString(fmt.Sprintf("part-%06d", i)),
			"p": sqltypes.NewFloat(900 + float64(r.Intn(200000))/100),
		})
		if err != nil {
			return cfg, err
		}
	}
	statuses := []string{"O", "F", "P"}
	for i := 1; i <= cfg.Orders; i++ {
		err := insert(sess, "INSERT INTO orders VALUES (@k, @c, @t, @s)", map[string]sqltypes.Value{
			"k": sqltypes.NewInt(int64(i)),
			"c": sqltypes.NewInt(int64(r.Intn(cfg.Orders/10 + 1))),
			"t": sqltypes.NewFloat(float64(r.Intn(5000000)) / 100),
			"s": sqltypes.NewString(statuses[r.Intn(len(statuses))]),
		})
		if err != nil {
			return cfg, err
		}
	}
	for i := 1; i <= cfg.Lineitems; i++ {
		err := insert(sess, "INSERT INTO lineitem VALUES (@i, @o, @p, @q, @e, @c)", map[string]sqltypes.Value{
			"i": sqltypes.NewInt(int64(i)),
			"o": sqltypes.NewInt(int64(r.Intn(cfg.Orders) + 1)),
			"p": sqltypes.NewInt(int64(r.Intn(cfg.Parts) + 1)),
			"q": sqltypes.NewFloat(float64(r.Intn(50) + 1)),
			"e": sqltypes.NewFloat(float64(r.Intn(10000000)) / 100),
			"c": sqltypes.NewString(fmt.Sprintf("comment-%d", i)),
		})
		if err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

func insert(sess *engine.Session, sql string, params map[string]sqltypes.Value) error {
	_, err := sess.Exec(sql, params)
	return err
}

// Zipf returns a deterministic sampler of ranks in [0, n) with skew s
// (s > 1; larger is more skewed). Both the §6.2 mix and the simulation
// harness's trace generator use it to produce the hot-statement/hot-user
// distributions real monitoring workloads exhibit: a few signatures absorb
// most events while a long tail keeps creating new LAT groups.
func Zipf(r *rand.Rand, s float64, n int) func() int {
	z := rand.NewZipf(r, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// Query is one workload statement with bound parameters.
type Query struct {
	SQL    string
	Params map[string]sqltypes.Value
	Join   bool // true for the expensive join queries
}

// Mix produces the deterministic §6.2 query sequence: ShortQueries
// single-row selections on lineitem and orders, with one join query after
// every JoinEvery short ones (up to JoinQueries total). Identical seeds
// produce identical sequences, matching the paper's "exact same queries in
// order" methodology.
func Mix(cfg Config) []Query {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	out := make([]Query, 0, cfg.ShortQueries+cfg.JoinQueries)
	joins := 0
	for i := 0; i < cfg.ShortQueries; i++ {
		if i%2 == 0 {
			out = append(out, Query{
				SQL: "SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_id = @key",
				Params: map[string]sqltypes.Value{
					"key": sqltypes.NewInt(int64(r.Intn(cfg.Lineitems) + 1)),
				},
			})
		} else {
			out = append(out, Query{
				SQL: "SELECT o_totalprice, o_status FROM orders WHERE o_orderkey = @key",
				Params: map[string]sqltypes.Value{
					"key": sqltypes.NewInt(int64(r.Intn(cfg.Orders) + 1)),
				},
			})
		}
		if joins < cfg.JoinQueries && (i+1)%cfg.JoinEvery == 0 {
			// A selection of 1000–2000 rows from a 3-way join, per §6.2.
			// Key ranges are sized so the lineitem slice is ~1.5% of the
			// table (~1500 rows at default scale). Join queries carry
			// inline literals so that each instance has a distinct text —
			// the unit the top-k task identifies.
			span := cfg.Lineitems / 66
			lo := r.Intn(cfg.Lineitems - span)
			out = append(out, Query{
				SQL: fmt.Sprintf(`SELECT l.l_id, o.o_totalprice, p.p_retailprice
					FROM lineitem l
					JOIN orders o ON l.l_orderkey = o.o_orderkey
					JOIN part p ON l.l_partkey = p.p_partkey
					WHERE l.l_id >= %d AND l.l_id < %d`, lo, lo+span),
				Join: true,
			})
			joins++
		}
	}
	return out
}

// Run executes the workload sequentially on one session, returning the
// number of statements executed.
func Run(eng *engine.Engine, queries []Query, user, app string) (int, error) {
	sess := eng.NewSession(user, app)
	for i, q := range queries {
		if _, err := sess.Exec(q.SQL, q.Params); err != nil {
			return i, fmt.Errorf("workload: query %d: %w", i, err)
		}
	}
	return len(queries), nil
}

// RunMeasured executes the workload and additionally records the maximum
// client-observed duration per statement text — the ground truth the
// top-k accuracy experiment compares monitoring approaches against.
func RunMeasured(eng *engine.Engine, queries []Query, user, app string) (map[string]time.Duration, time.Duration, error) {
	sess := eng.NewSession(user, app)
	durations := make(map[string]time.Duration, 256)
	start := time.Now()
	for i, q := range queries {
		qs := time.Now()
		if _, err := sess.Exec(q.SQL, q.Params); err != nil {
			return nil, 0, fmt.Errorf("workload: query %d: %w", i, err)
		}
		d := time.Since(qs)
		if d > durations[q.SQL] {
			durations[q.SQL] = d
		}
	}
	return durations, time.Since(start), nil
}
