package rules

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlcm/internal/lat"
	"sqlcm/internal/monitor"
	"sqlcm/internal/sqltypes"
)

// fakeObj is a map-backed monitored object.
type fakeObj struct {
	class string
	attrs map[string]sqltypes.Value
}

func (f *fakeObj) Class() string { return f.class }

func (f *fakeObj) Get(attr string) (sqltypes.Value, bool) {
	v, ok := f.attrs[attr]
	return v, ok
}

func queryObj(id int64, sig string, dur float64) *fakeObj {
	return &fakeObj{class: monitor.ClassQuery, attrs: map[string]sqltypes.Value{
		"ID":                sqltypes.NewInt(id),
		"Logical_Signature": sqltypes.NewString(sig),
		"Duration":          sqltypes.NewFloat(dur),
		"Query_Text":        sqltypes.NewString("SELECT " + sig),
	}}
}

// fakeEnv records action effects.
type fakeEnv struct {
	mu        sync.Mutex
	lats      map[string]*lat.Table
	persisted []string
	mails     []string
	commands  []string
	cancelled []int64
	timerSets []string
	queries   []monitor.Object
	pairs     [][2]monitor.Object
}

func newFakeEnv() *fakeEnv { return &fakeEnv{lats: map[string]*lat.Table{}} }

func (f *fakeEnv) LAT(name string) (*lat.Table, bool) {
	t, ok := f.lats[name]
	return t, ok
}

func (f *fakeEnv) Persist(table string, cols []string, kinds []sqltypes.Kind, row []sqltypes.Value) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	vals := make([]string, len(row))
	for i, v := range row {
		vals[i] = v.String()
	}
	f.persisted = append(f.persisted, table+":"+strings.Join(vals, ","))
	return nil
}

func (f *fakeEnv) SendMail(addr, body string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mails = append(f.mails, addr+"|"+body)
	return nil
}

func (f *fakeEnv) RunExternal(cmd string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.commands = append(f.commands, cmd)
	return nil
}

func (f *fakeEnv) CancelQuery(id int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cancelled = append(f.cancelled, id)
	return true
}

func (f *fakeEnv) SetTimer(name string, period time.Duration, count int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.timerSets = append(f.timerSets, fmt.Sprintf("%s/%s/%d", name, period, count))
	return nil
}

func (f *fakeEnv) ActiveQueryObjects() []monitor.Object { return f.queries }

func (f *fakeEnv) BlockPairObjects() [][2]monitor.Object { return f.pairs }

func dispatchQuery(e *Engine, obj monitor.Object) {
	e.Dispatch(monitor.EvQueryCommit, map[string]monitor.Object{monitor.ClassQuery: obj})
}

func mustCond(t *testing.T, src string) interface{ String() string } {
	t.Helper()
	c, err := ParseCondition(src)
	if err != nil {
		t.Fatalf("cond %q: %v", src, err)
	}
	return c
}

func TestSimpleRuleFiresOnCondition(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	cond, _ := ParseCondition("Query.Duration > 100")
	err := e.AddRule(&Rule{
		Name:      "slow",
		Event:     monitor.EvQueryCommit,
		Condition: cond,
		Actions:   []Action{&PersistAction{Table: "slow_queries", Attrs: []string{"ID", "Query_Text", "Duration"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dispatchQuery(e, queryObj(1, "a", 50))
	dispatchQuery(e, queryObj(2, "a", 150))
	if len(env.persisted) != 1 || !strings.Contains(env.persisted[0], "SELECT a") {
		t.Fatalf("persisted: %v", env.persisted)
	}
	st := e.Stats()
	if st.Evaluations != 2 || st.Fired != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUnqualifiedAttrsUsePrimary(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	cond, _ := ParseCondition("Duration > 10")
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "r", Event: monitor.EvQueryCommit, Condition: cond,
		Actions: []Action{&PersistAction{Table: "t", Attrs: []string{"ID"}}},
	})
	dispatchQuery(e, queryObj(7, "x", 20))
	if len(env.persisted) != 1 {
		t.Fatalf("persisted: %v", env.persisted)
	}
}

func TestOutlierRuleWithLAT(t *testing.T) {
	// Example 1 from the paper: LAT of average duration per signature;
	// rule fires when an instance runs 5x slower than its average.
	env := newFakeEnv()
	table, err := lat.New(lat.Spec{
		Name:    "Duration_LAT",
		GroupBy: []string{"Logical_Signature"},
		Aggs:    []lat.AggCol{{Func: lat.Avg, Attr: "Duration", Name: "Avg_Duration"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.lats["Duration_LAT"] = table
	e := NewEngine(env)

	cond, err := ParseCondition("Query.Duration > 5 * Duration_LAT.Avg_Duration")
	if err != nil {
		t.Fatal(err)
	}
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "outlier", Event: monitor.EvQueryCommit, Condition: cond,
		Actions: []Action{&PersistAction{Table: "outliers", Attrs: []string{"ID", "Query_Text"}}},
	})
	// Maintain the LAT with a second rule (order matters: detection first,
	// then insert, so the current query does not dilute its own baseline).
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "maintain", Event: monitor.EvQueryCommit,
		Actions: []Action{&InsertAction{LAT: "Duration_LAT"}},
	})

	// First query: no LAT row yet → ∃-quantification makes condition false.
	dispatchQuery(e, queryObj(1, "sig", 10))
	if len(env.persisted) != 0 {
		t.Fatalf("fired without LAT row: %v", env.persisted)
	}
	// Steady instances.
	for i := 2; i <= 5; i++ {
		dispatchQuery(e, queryObj(int64(i), "sig", 10))
	}
	if len(env.persisted) != 0 {
		t.Fatalf("false positive: %v", env.persisted)
	}
	// Outlier: 10*5 < 100.
	dispatchQuery(e, queryObj(6, "sig", 100))
	if len(env.persisted) != 1 {
		t.Fatalf("outlier not caught: %v", env.persisted)
	}
	// Other signatures have separate baselines.
	dispatchQuery(e, queryObj(7, "other", 100))
	if len(env.persisted) != 1 {
		t.Fatalf("cross-signature contamination: %v", env.persisted)
	}
}

func TestRuleOrderIsRegistrationOrder(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	var order []string
	mk := func(name string) *Rule {
		return &Rule{
			Name: name, Event: monitor.EvQueryCommit,
			Actions: []Action{&FuncAction{Name: name, Fn: func(Env, *Ctx) error {
				order = append(order, name)
				return nil
			}}},
		}
	}
	e.AddRule(mk("third"))  //nolint:errcheck
	e.AddRule(mk("first"))  //nolint:errcheck
	e.AddRule(mk("second")) //nolint:errcheck
	dispatchQuery(e, queryObj(1, "s", 1))
	if strings.Join(order, ",") != "third,first,second" {
		t.Fatalf("order: %v", order)
	}
}

func TestDisableEnableAndRemove(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	fired := 0
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "r", Event: monitor.EvQueryCommit,
		Actions: []Action{&FuncAction{Fn: func(Env, *Ctx) error { fired++; return nil }}},
	})
	dispatchQuery(e, queryObj(1, "s", 1))
	r, _ := e.Rule("r")
	r.SetEnabled(false)
	dispatchQuery(e, queryObj(2, "s", 1))
	r.SetEnabled(true)
	dispatchQuery(e, queryObj(3, "s", 1))
	if fired != 2 {
		t.Fatalf("fired: %d", fired)
	}
	if !e.RemoveRule("r") || e.RemoveRule("r") {
		t.Fatal("remove semantics")
	}
	dispatchQuery(e, queryObj(4, "s", 1))
	if fired != 2 {
		t.Fatal("removed rule fired")
	}
}

func TestDuplicateRuleRejected(t *testing.T) {
	e := NewEngine(newFakeEnv())
	if err := e.AddRule(&Rule{Name: "r", Event: monitor.EvQueryCommit}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(&Rule{Name: "r", Event: monitor.EvQueryCommit}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := e.AddRule(&Rule{Event: monitor.EvQueryCommit}); err == nil {
		t.Fatal("nameless accepted")
	}
}

func TestFreeClassIterationOverActiveQueries(t *testing.T) {
	// Timer-driven rule over all live queries (paper §5.2: when the event
	// does not bind the condition's class, iterate over all objects).
	env := newFakeEnv()
	env.queries = []monitor.Object{
		queryObj(1, "a", 5),
		queryObj(2, "b", 50),
		queryObj(3, "c", 500),
	}
	e := NewEngine(env)
	cond, _ := ParseCondition("Query.Duration > 10")
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "watch", Event: monitor.EvTimerAlarm, Condition: cond,
		Actions: []Action{&PersistAction{Table: "long_running", Attrs: []string{"Query.ID"}}},
	})
	e.Dispatch(monitor.EvTimerAlarm, map[string]monitor.Object{
		monitor.ClassTimer: &monitor.TimerObject{Name: "t", Now: time.Now()},
	})
	if len(env.persisted) != 2 {
		t.Fatalf("persisted: %v", env.persisted)
	}
	if e.Stats().Evaluations != 3 {
		t.Fatalf("evaluations: %d", e.Stats().Evaluations)
	}
}

func TestBlockerBlockedPairIteration(t *testing.T) {
	env := newFakeEnv()
	blocker := &fakeObj{class: monitor.ClassBlocker, attrs: map[string]sqltypes.Value{
		"ID": sqltypes.NewInt(10), "Query_Text": sqltypes.NewString("UPDATE t"),
	}}
	blocked := &fakeObj{class: monitor.ClassBlocked, attrs: map[string]sqltypes.Value{
		"ID": sqltypes.NewInt(20), "Wait_Time": sqltypes.NewFloat(30),
	}}
	env.pairs = [][2]monitor.Object{{blocker, blocked}}
	e := NewEngine(env)
	cond, _ := ParseCondition("Blocked.Wait_Time > 10")
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "stuck", Event: monitor.EvTimerAlarm, Condition: cond,
		Actions: []Action{&PersistAction{Table: "stuck", Attrs: []string{"Blocker.ID", "Blocked.ID"}}},
	})
	e.Dispatch(monitor.EvTimerAlarm, map[string]monitor.Object{
		monitor.ClassTimer: &monitor.TimerObject{Name: "t", Now: time.Now()},
	})
	if len(env.persisted) != 1 || env.persisted[0] != "stuck:10,20" {
		t.Fatalf("persisted: %v", env.persisted)
	}
}

func TestActionsSendMailRunExternalCancelSet(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "multi", Event: monitor.EvQueryCommit,
		Actions: []Action{
			&SendMailAction{Address: "dba@example.com", Text: "query {ID} took {Duration}s"},
			&RunExternalAction{Command: "analyze --id={ID}"},
			&CancelAction{},
			&SetTimerAction{Timer: "t1", Period: time.Second, Count: 3},
		},
	})
	dispatchQuery(e, queryObj(42, "s", 7))
	if len(env.mails) != 1 || !strings.Contains(env.mails[0], "query 42 took 7s") {
		t.Fatalf("mail: %v", env.mails)
	}
	if len(env.commands) != 1 || env.commands[0] != "analyze --id=42" {
		t.Fatalf("cmd: %v", env.commands)
	}
	if len(env.cancelled) != 1 || env.cancelled[0] != 42 {
		t.Fatalf("cancel: %v", env.cancelled)
	}
	if len(env.timerSets) != 1 || env.timerSets[0] != "t1/1s/3" {
		t.Fatalf("timer: %v", env.timerSets)
	}
}

func TestSubstituteLATReference(t *testing.T) {
	env := newFakeEnv()
	table, _ := lat.New(lat.Spec{
		Name:    "L",
		GroupBy: []string{"Logical_Signature"},
		Aggs:    []lat.AggCol{{Func: lat.Avg, Attr: "Duration", Name: "AvgD"}},
	})
	env.lats["L"] = table
	table.Insert(queryObj(1, "s", 4).Get) //nolint:errcheck
	table.Insert(queryObj(2, "s", 6).Get) //nolint:errcheck
	ctx := &Ctx{
		Objects: map[string]monitor.Object{monitor.ClassQuery: queryObj(3, "s", 100)},
		Primary: queryObj(3, "s", 100),
	}
	out := Substitute(env, "avg is {L.AvgD}, unknown {nope.x}", ctx)
	if out != "avg is 5, unknown {nope.x}" {
		t.Fatalf("substitute: %q", out)
	}
}

func TestActionErrorsDoNotStopLaterActions(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	ran := false
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "r", Event: monitor.EvQueryCommit,
		Actions: []Action{
			&InsertAction{LAT: "missing"}, // fails
			&FuncAction{Fn: func(Env, *Ctx) error { ran = true; return nil }},
		},
	})
	dispatchQuery(e, queryObj(1, "s", 1))
	if !ran {
		t.Fatal("later action skipped after error")
	}
	if e.Stats().ActionErrs != 1 {
		t.Fatalf("action errors: %d", e.Stats().ActionErrs)
	}
}

func TestConditionErrorsCountAndSkip(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	cond, _ := ParseCondition("Query.No_Such_Attr > 1")
	fired := false
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "bad", Event: monitor.EvQueryCommit, Condition: cond,
		Actions: []Action{&FuncAction{Fn: func(Env, *Ctx) error { fired = true; return nil }}},
	})
	dispatchQuery(e, queryObj(1, "s", 1))
	if fired {
		t.Fatal("rule with erroring condition fired")
	}
	if e.Stats().ActionErrs != 1 {
		t.Fatalf("errors: %d", e.Stats().ActionErrs)
	}
}

func TestThreeValuedLogicInConditions(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	obj := &fakeObj{class: monitor.ClassQuery, attrs: map[string]sqltypes.Value{
		"A": sqltypes.Null,
		"B": sqltypes.NewInt(5),
	}}
	check := func(src string, want bool) {
		t.Helper()
		cond, err := ParseCondition(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.evalCond(cond, &Ctx{
			Objects: map[string]monitor.Object{monitor.ClassQuery: obj},
			Primary: obj,
		})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	check("Query.A > 1", false)
	check("Query.A > 1 OR Query.B > 1", true)
	check("Query.A > 1 AND Query.B > 1", false)
	check("NOT Query.A > 1", true) // NULL comparison is not-true
	check("Query.A IS NULL", true)
	check("Query.A IS NOT NULL", false)
	check("Query.B = 5 AND (Query.B < 10 OR Query.A = 1)", true)
}

func TestLATMissingRowFalsifiesWholeCondition(t *testing.T) {
	env := newFakeEnv()
	table, _ := lat.New(lat.Spec{
		Name:    "L",
		GroupBy: []string{"Logical_Signature"},
		Aggs:    []lat.AggCol{{Func: lat.Avg, Attr: "Duration", Name: "AvgD"}},
	})
	env.lats["L"] = table
	e := NewEngine(env)
	// Even OR with a true branch: a reference to a missing LAT row makes
	// the whole condition false (∃-quantification per §5.2).
	cond, _ := ParseCondition("Query.Duration > 0 AND L.AvgD > 0")
	ok, err := e.evalCond(cond, &Ctx{
		Objects: map[string]monitor.Object{monitor.ClassQuery: queryObj(1, "s", 5)},
		Primary: queryObj(1, "s", 5),
	})
	if err != nil || ok {
		t.Fatalf("missing LAT row: ok=%v err=%v", ok, err)
	}
}

func TestTimerManagerFiresAndStops(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	var mu sync.Mutex
	alarms := 0
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "tick", Event: monitor.EvTimerAlarm,
		Actions: []Action{&FuncAction{Fn: func(Env, *Ctx) error {
			mu.Lock()
			alarms++
			mu.Unlock()
			return nil
		}}},
	})
	tm := NewTimerManager(e)
	defer tm.Close()
	if err := tm.Set("t", 20*time.Millisecond, 3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	mu.Lock()
	got := alarms
	mu.Unlock()
	if got != 3 {
		t.Fatalf("alarms: %d, want 3", got)
	}
	if len(tm.Active()) != 0 {
		t.Fatalf("timer not removed after count: %v", tm.Active())
	}
	// Infinite timer + disable.
	if err := tm.Set("inf", 10*time.Millisecond, -1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := tm.Set("inf", 0, 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	after := alarms
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	final := alarms
	mu.Unlock()
	if final-after > 1 {
		t.Fatalf("timer kept firing after disable: %d -> %d", after, final)
	}
	if err := tm.Set("bad", 0, 5); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestPersistFromLAT(t *testing.T) {
	env := newFakeEnv()
	table, _ := lat.New(lat.Spec{
		Name:    "TopQ",
		GroupBy: []string{"ID"},
		Aggs:    []lat.AggCol{{Func: lat.Max, Attr: "Duration", Name: "D"}},
		OrderBy: []lat.OrderKey{{Col: "D", Desc: true}},
		MaxRows: 10,
	})
	env.lats["TopQ"] = table
	for i := 1; i <= 3; i++ {
		table.Insert(queryObj(int64(i), "s", float64(i*10)).Get) //nolint:errcheck
	}
	e := NewEngine(env)
	e.AddRule(&Rule{ //nolint:errcheck
		Name: "flush", Event: monitor.EvTimerAlarm,
		Actions: []Action{&PersistAction{Table: "report", FromLAT: "TopQ"}},
	})
	e.Dispatch(monitor.EvTimerAlarm, map[string]monitor.Object{
		monitor.ClassTimer: &monitor.TimerObject{Name: "t", Now: time.Now()},
	})
	if len(env.persisted) != 3 {
		t.Fatalf("persisted: %v", env.persisted)
	}
	if env.persisted[0] != "report:3,30" {
		t.Fatalf("order/most-important-first: %v", env.persisted)
	}
}
