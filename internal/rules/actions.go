package rules

import (
	"fmt"
	"strings"
	"time"

	"sqlcm/internal/monitor"
	"sqlcm/internal/sqltypes"
)

// ---------------------------------------------------------------------------
// Insert(LATName) — fold the in-context object into a LAT (§5.3).
// ---------------------------------------------------------------------------

// InsertAction inserts the in-context object into a LAT. The LAT's
// attribute names resolve against the rule context: "Class.Attr" reads the
// named object, a bare name reads the primary object.
type InsertAction struct {
	LAT string
}

// Run implements Action.
func (a *InsertAction) Run(env Env, ctx *Ctx) error {
	table, ok := env.LAT(a.LAT)
	if !ok {
		return fmt.Errorf("rules: Insert: unknown LAT %q", a.LAT)
	}
	return table.Insert(ctx.Attr)
}

// Describe implements Action.
func (a *InsertAction) Describe() string { return "Insert(" + a.LAT + ")" }

// ---------------------------------------------------------------------------
// Reset(LATName)
// ---------------------------------------------------------------------------

// ResetAction clears a LAT.
type ResetAction struct {
	LAT string
}

// Run implements Action.
func (a *ResetAction) Run(env Env, ctx *Ctx) error {
	table, ok := env.LAT(a.LAT)
	if !ok {
		return fmt.Errorf("rules: Reset: unknown LAT %q", a.LAT)
	}
	table.Reset()
	return nil
}

// Describe implements Action.
func (a *ResetAction) Describe() string { return "Reset(" + a.LAT + ")" }

// ---------------------------------------------------------------------------
// Persist(Table, …) — write object attributes or a whole LAT to a table.
// ---------------------------------------------------------------------------

// PersistAction writes monitoring data to a disk-resident table (§5.3).
// With FromLAT set it persists every row of that LAT; otherwise it persists
// the listed attributes of the in-context object. The engine appends a
// timestamp column, per §4.3.
type PersistAction struct {
	Table   string
	FromLAT string
	// Attrs are attribute references for object persists; references may be
	// qualified ("Blocker.Query_Text").
	Attrs []string
}

// Run implements Action.
func (a *PersistAction) Run(env Env, ctx *Ctx) error {
	if a.FromLAT != "" {
		table, ok := env.LAT(a.FromLAT)
		if !ok {
			return fmt.Errorf("rules: Persist: unknown LAT %q", a.FromLAT)
		}
		cols := table.Spec().Columns()
		rows := table.Rows()
		for _, row := range rows {
			kinds := kindsOf(row)
			if err := env.Persist(a.Table, cols, kinds, row); err != nil {
				return err
			}
		}
		return nil
	}
	if len(a.Attrs) == 0 {
		return fmt.Errorf("rules: Persist: no attributes listed")
	}
	cols := make([]string, len(a.Attrs))
	row := make([]sqltypes.Value, len(a.Attrs))
	seen := make(map[string]string, len(a.Attrs))
	for i, ref := range a.Attrs {
		cols[i] = sanitizeColumn(ref)
		// Sanitizing maps '.' to '_', so distinct references can collide
		// ("Blocker.Duration" vs a literal "Blocker_Duration"); persisting
		// both under one column would silently drop data, so reject.
		if prev, dup := seen[cols[i]]; dup {
			return fmt.Errorf("rules: Persist: attributes %q and %q both map to column %q", prev, ref, cols[i])
		}
		seen[cols[i]] = ref
		v, ok := ctx.Attr(ref)
		if !ok {
			return fmt.Errorf("rules: Persist: unresolved attribute %q", ref)
		}
		row[i] = v
	}
	return env.Persist(a.Table, cols, kindsOf(row), row)
}

// Describe implements Action.
func (a *PersistAction) Describe() string {
	if a.FromLAT != "" {
		return fmt.Sprintf("Persist(%s ← LAT %s)", a.Table, a.FromLAT)
	}
	return fmt.Sprintf("Persist(%s, %s)", a.Table, strings.Join(a.Attrs, ", "))
}

func kindsOf(row []sqltypes.Value) []sqltypes.Kind {
	out := make([]sqltypes.Kind, len(row))
	for i, v := range row {
		out[i] = v.Kind()
	}
	return out
}

func sanitizeColumn(ref string) string {
	return strings.ReplaceAll(ref, ".", "_")
}

// ---------------------------------------------------------------------------
// SendMail(Text, Address)
// ---------------------------------------------------------------------------

// SendMailAction sends a notification with attribute values substituted
// into the text: occurrences of {Class.Attr}, {LAT.Column} or {Attr} are
// replaced (§5.3).
type SendMailAction struct {
	Address string
	Text    string
}

// Run implements Action.
func (a *SendMailAction) Run(env Env, ctx *Ctx) error {
	return env.SendMail(a.Address, Substitute(env, a.Text, ctx))
}

// Describe implements Action.
func (a *SendMailAction) Describe() string { return "SendMail(" + a.Address + ")" }

// ---------------------------------------------------------------------------
// RunExternal(Command)
// ---------------------------------------------------------------------------

// RunExternalAction launches an external program with substitution, e.g. a
// post-processing job over a persisted LAT (§5.3).
type RunExternalAction struct {
	Command string
}

// Run implements Action.
func (a *RunExternalAction) Run(env Env, ctx *Ctx) error {
	return env.RunExternal(Substitute(env, a.Command, ctx))
}

// Describe implements Action.
func (a *RunExternalAction) Describe() string { return "RunExternal(" + a.Command + ")" }

// Substitute replaces {ref} placeholders with attribute or LAT values.
func Substitute(env Env, text string, ctx *Ctx) string {
	var b strings.Builder
	for {
		i := strings.IndexByte(text, '{')
		if i < 0 {
			b.WriteString(text)
			return b.String()
		}
		j := strings.IndexByte(text[i:], '}')
		if j < 0 {
			b.WriteString(text)
			return b.String()
		}
		b.WriteString(text[:i])
		ref := text[i+1 : i+j]
		if v, ok := lookupRef(env, ref, ctx); ok {
			b.WriteString(v.String())
		} else {
			b.WriteString("{" + ref + "}")
		}
		text = text[i+j+1:]
	}
}

// lookupRef resolves a substitution reference: object attribute first, then
// LAT column (matched on the in-context object).
func lookupRef(env Env, ref string, ctx *Ctx) (sqltypes.Value, bool) {
	if v, ok := ctx.Attr(ref); ok {
		return v, true
	}
	if latName, col, ok := strings.Cut(ref, "."); ok {
		if table, found := env.LAT(latName); found {
			row, matched := table.LookupByGetter(ctx.Attr)
			if !matched {
				return sqltypes.Null, false
			}
			idx := table.ColumnIndex(col)
			if idx < 0 {
				return sqltypes.Null, false
			}
			return row[idx], true
		}
	}
	return sqltypes.Null, false
}

// ---------------------------------------------------------------------------
// Cancel()
// ---------------------------------------------------------------------------

// CancelAction cancels the in-context query (Query, Blocker or Blocked
// object, §5.3). Per the paper, the action only signals the executing
// threads; remaining rules for the event still run.
type CancelAction struct {
	// Class selects which object to cancel; empty means the primary.
	Class string
}

// Run implements Action.
func (a *CancelAction) Run(env Env, ctx *Ctx) error {
	obj := ctx.Primary
	if a.Class != "" {
		o, ok := ctx.Objects[a.Class]
		if !ok {
			return fmt.Errorf("rules: Cancel: no %s object in context", a.Class)
		}
		obj = o
	}
	if obj == nil {
		return fmt.Errorf("rules: Cancel: no object in context")
	}
	switch obj.Class() {
	case monitor.ClassQuery, monitor.ClassBlocker, monitor.ClassBlocked:
	default:
		return fmt.Errorf("rules: Cancel applies to Query, Blocker or Blocked, not %s", obj.Class())
	}
	idVal, ok := obj.Get("ID")
	if !ok {
		return fmt.Errorf("rules: Cancel: object has no ID")
	}
	env.CancelQuery(idVal.Int())
	return nil
}

// Describe implements Action.
func (a *CancelAction) Describe() string {
	if a.Class != "" {
		return "Cancel(" + a.Class + ")"
	}
	return "Cancel()"
}

// ---------------------------------------------------------------------------
// Set(Time, number_alarms) — timers
// ---------------------------------------------------------------------------

// SetTimerAction arms a timer (§5.3): period between alarms and the number
// of alarms (0 disables, negative repeats forever).
type SetTimerAction struct {
	Timer  string
	Period time.Duration
	Count  int
}

// Run implements Action.
func (a *SetTimerAction) Run(env Env, ctx *Ctx) error {
	return env.SetTimer(a.Timer, a.Period, a.Count)
}

// Describe implements Action.
func (a *SetTimerAction) Describe() string {
	return fmt.Sprintf("Set(%s, %s, %d)", a.Timer, a.Period, a.Count)
}

// ---------------------------------------------------------------------------
// FuncAction — programmatic hook (closures as actions), useful for tests
// and for embedding applications that want Go callbacks.
// ---------------------------------------------------------------------------

// FuncAction wraps a Go function as a rule action.
type FuncAction struct {
	Name string
	Fn   func(env Env, ctx *Ctx) error
}

// Run implements Action.
func (a *FuncAction) Run(env Env, ctx *Ctx) error { return a.Fn(env, ctx) }

// Describe implements Action.
func (a *FuncAction) Describe() string { return "Func(" + a.Name + ")" }
