package rules

import (
	"strings"
	"testing"

	"sqlcm/internal/monitor"
	"sqlcm/internal/sqltypes"
)

// fuzzEnv resolves a fixed attribute set; everything else is unknown.
func fuzzEnv() (Env, *Ctx) {
	obj := &fakeObj{class: monitor.ClassQuery, attrs: map[string]sqltypes.Value{
		"ID":       sqltypes.NewInt(7),
		"Duration": sqltypes.NewFloat(1.5),
		"User":     sqltypes.NewString("dba"),
	}}
	ctx := &Ctx{Objects: map[string]monitor.Object{monitor.ClassQuery: obj}, Primary: obj}
	return newFakeEnv(), ctx
}

// FuzzSubstitute hardens the placeholder scanner against unmatched,
// nested, empty and adjacent braces: it must never panic, always
// terminate, and preserve text outside well-formed placeholders.
func FuzzSubstitute(f *testing.F) {
	f.Add("plain text, no braces")
	f.Add("known {ID} and unknown {nope}")
	f.Add("unmatched { opener")
	f.Add("unmatched } closer")
	f.Add("{}")
	f.Add("{{nested {ID}}}")
	f.Add("adjacent {ID}{User}{Duration}")
	f.Add("trailing {")
	f.Add("{unclosed at end")
	f.Add("}{ reversed")
	f.Add("deep {{{{{{ID}}}}}}")
	f.Add("LAT-style {L.AvgD} refs")
	f.Add("unicode {Düration} braces 💥 {")

	env, ctx := fuzzEnv()
	f.Fuzz(func(t *testing.T, text string) {
		out := Substitute(env, text, ctx)

		// Termination + no panic are implied by getting here. Sanity: the
		// output never shrinks below the input minus all well-formed
		// placeholder syntax, and known refs are substituted.
		if !strings.ContainsRune(text, '{') && out != text {
			t.Fatalf("brace-free text altered: %q → %q", text, out)
		}
		// A lone unmatched opener passes everything through verbatim from
		// that point, so the tail must be preserved.
		if i := strings.IndexByte(text, '{'); i >= 0 && !strings.ContainsRune(text[i:], '}') {
			if !strings.HasSuffix(out, text[i:]) {
				t.Fatalf("unterminated tail mangled: %q → %q", text, out)
			}
		}
		// Unknown refs are kept as-is, so substitution is idempotent for
		// outputs that contain no known refs anymore.
		out2 := Substitute(env, out, ctx)
		out3 := Substitute(env, out2, ctx)
		if out3 != out2 {
			t.Fatalf("substitution not idempotent: %q → %q → %q", out, out2, out3)
		}
	})
}

func TestSubstituteEdgeCases(t *testing.T) {
	env, ctx := fuzzEnv()
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{"{ID}", "7"},
		{"{}", "{}"},
		{"a{b", "a{b"},
		{"a}b", "a}b"},
		{"{ID", "{ID"},
		{"ID}", "ID}"},
		{"{{ID}}", "{{ID}}"}, // ref "{ID" is unknown → kept verbatim, plus the tail "}"
		{"x{ID}y{User}z", "x7ydbaz"},
		{"{nope}", "{nope}"},
	} {
		if got := Substitute(env, tc.in, ctx); got != tc.want {
			t.Errorf("Substitute(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
