package rules

import (
	"fmt"
	"sync"
	"time"

	"sqlcm/internal/lockcheck"
	"sqlcm/internal/monitor"
)

// Dispatcher receives Timer.Alarm events. The rule engine satisfies it
// directly; production wiring routes alarms through the event layer's bus
// so they are counted like every other monitored event.
type Dispatcher interface {
	Dispatch(ev monitor.Event, objs map[string]monitor.Object)
}

// TimerManager implements the Timer monitored class (§5.1): named timers
// whose alarms dispatch Timer.Alarm events through the rule engine on a
// background goroutine, used for rules that cannot be tied to a system
// event (periodic reporting, watchdogs).
type TimerManager struct {
	dispatcher Dispatcher

	// mu protects the timer map and closed flag.
	//sqlcm:lock rules.timer
	mu     lockcheck.Mutex
	timers map[string]*timerState
	closed bool
	// wg tracks every timer goroutine ever started (including ones
	// superseded by a re-arm), so Close can wait for all of them to exit
	// and guarantee no Dispatch call happens after Close returns.
	wg sync.WaitGroup
}

type timerState struct {
	name   string
	cancel chan struct{}
	seq    int64
}

// NewTimerManager creates a manager dispatching into d.
func NewTimerManager(d Dispatcher) *TimerManager {
	m := &TimerManager{dispatcher: d, timers: make(map[string]*timerState)}
	m.mu.SetClass("rules.timer")
	return m
}

// Set arms (or re-arms, or with count 0 disables) the named timer: count
// alarms separated by period; negative count repeats until disabled.
func (m *TimerManager) Set(name string, period time.Duration, count int) error {
	if name == "" {
		return fmt.Errorf("rules: timer needs a name")
	}
	if count != 0 && period <= 0 {
		return fmt.Errorf("rules: timer %q needs a positive period", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("rules: timer manager closed")
	}
	// Re-arming stops the previous schedule.
	if prev, ok := m.timers[name]; ok {
		close(prev.cancel)
		delete(m.timers, name)
	}
	if count == 0 {
		return nil
	}
	st := &timerState{name: name, cancel: make(chan struct{})}
	m.timers[name] = st
	m.wg.Add(1)
	go m.run(st, period, count)
	return nil
}

// Active returns the names of armed timers.
func (m *TimerManager) Active() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.timers))
	for n := range m.timers {
		out = append(out, n)
	}
	return out
}

// Close disables every timer and waits for all timer goroutines to exit:
// after Close returns, no alarm can reach the dispatcher, so the rule
// engine (and the engine behind it) may be torn down safely.
func (m *TimerManager) Close() {
	m.mu.Lock()
	m.closed = true
	for _, st := range m.timers {
		close(st.cancel)
	}
	m.timers = make(map[string]*timerState)
	m.mu.Unlock()
	// Wait outside the lock: exiting goroutines take m.mu to deregister.
	m.wg.Wait()
}

func (m *TimerManager) run(st *timerState, period time.Duration, count int) {
	defer m.wg.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	fired := 0
	for {
		select {
		case <-st.cancel:
			return
		case now := <-ticker.C:
			// A tick and a cancel can be ready simultaneously; prefer the
			// cancel so a disabled timer does not fire a late alarm.
			select {
			case <-st.cancel:
				return
			default:
			}
			st.seq++
			obj := &monitor.TimerObject{Name: st.name, Now: now, Seq: st.seq}
			m.dispatcher.Dispatch(monitor.EvTimerAlarm, map[string]monitor.Object{
				monitor.ClassTimer: obj,
			})
			fired++
			if count > 0 && fired >= count {
				m.mu.Lock()
				if cur, ok := m.timers[st.name]; ok && cur == st {
					delete(m.timers, st.name)
				}
				m.mu.Unlock()
				return
			}
		}
	}
}
