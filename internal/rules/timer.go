package rules

import (
	"fmt"
	"sync"
	"time"

	"sqlcm/internal/clock"
	"sqlcm/internal/lockcheck"
	"sqlcm/internal/monitor"
)

// Dispatcher receives Timer.Alarm events. The rule engine satisfies it
// directly; production wiring routes alarms through the event layer's bus
// so they are counted like every other monitored event.
type Dispatcher interface {
	Dispatch(ev monitor.Event, objs map[string]monitor.Object)
}

// TimerManager implements the Timer monitored class (§5.1): named timers
// whose alarms dispatch Timer.Alarm events through the rule engine, used
// for rules that cannot be tied to a system event (periodic reporting,
// watchdogs).
//
// Scheduling is delegated to an injectable clock.Clock: each armed timer
// is one clock.AfterFunc registration, re-armed after every alarm. With
// the real clock alarms arrive on timer goroutines exactly as before;
// with the simulation harness's virtual clock they fire synchronously —
// and deterministically — inside Clock.Advance.
type TimerManager struct {
	dispatcher Dispatcher
	clk        clock.Clock

	// mu protects the timer map and closed flag.
	//sqlcm:lock rules.timer
	//sqlcm:guards timers, closed
	mu     lockcheck.Mutex
	timers map[string]*timerState
	closed bool
	// wg tracks every armed alarm (including superseded arms), so Close
	// can wait for in-flight callbacks and guarantee no Dispatch call
	// happens after Close returns.
	wg sync.WaitGroup
}

type timerState struct {
	name   string        // immutable after creation
	period time.Duration // immutable after creation
	count  int           // immutable after creation
	//sqlcm:guarded-by rules.timer
	seq int64
	// timer is the currently armed AfterFunc registration.
	//sqlcm:guarded-by rules.timer
	timer clock.Timer
}

// NewTimerManager creates a manager dispatching into d on the wall clock.
func NewTimerManager(d Dispatcher) *TimerManager {
	return NewTimerManagerWithClock(d, clock.System)
}

// NewTimerManagerWithClock creates a manager whose alarms are scheduled on
// clk (the simulation harness passes a virtual clock).
func NewTimerManagerWithClock(d Dispatcher, clk clock.Clock) *TimerManager {
	m := &TimerManager{dispatcher: d, clk: clk, timers: make(map[string]*timerState)}
	m.mu.SetClass("rules.timer")
	return m
}

// Set arms (or re-arms, or with count 0 disables) the named timer: count
// alarms separated by period; negative count repeats until disabled.
func (m *TimerManager) Set(name string, period time.Duration, count int) error {
	if name == "" {
		return fmt.Errorf("rules: timer needs a name")
	}
	if count != 0 && period <= 0 {
		return fmt.Errorf("rules: timer %q needs a positive period", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("rules: timer manager closed")
	}
	// Re-arming stops the previous schedule. A Stop that arrives too late
	// (the callback already started) is detected by the callback itself:
	// it finds the map no longer points at its state and backs off.
	if prev, ok := m.timers[name]; ok {
		if prev.timer != nil && prev.timer.Stop() {
			m.wg.Done()
		}
		delete(m.timers, name)
	}
	if count == 0 {
		return nil
	}
	st := &timerState{name: name, period: period, count: count}
	m.timers[name] = st
	m.wg.Add(1)
	//sqlcm:allow AfterFunc defers fire: the real clock runs it on a timer goroutine, the virtual clock inside Advance — never at this call site
	st.timer = m.clk.AfterFunc(period, func() { m.fire(st) })
	return nil
}

// Active returns the names of armed timers.
func (m *TimerManager) Active() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.timers))
	for n := range m.timers {
		out = append(out, n)
	}
	return out
}

// Close disables every timer and waits for in-flight alarm callbacks:
// after Close returns, no alarm can reach the dispatcher, so the rule
// engine (and the engine behind it) may be torn down safely.
func (m *TimerManager) Close() {
	m.mu.Lock()
	m.closed = true
	for _, st := range m.timers {
		if st.timer != nil && st.timer.Stop() {
			m.wg.Done()
		}
	}
	m.timers = make(map[string]*timerState)
	m.mu.Unlock()
	// Wait outside the lock: a running callback takes m.mu to validate
	// and deregister.
	m.wg.Wait()
}

// fire delivers one alarm for st and re-arms it while its schedule is
// live. It runs as a clock.AfterFunc callback: on the real clock that is
// a timer goroutine; on a virtual clock it is the goroutine driving
// Clock.Advance. The per-arm WaitGroup count is released only after the
// dispatch completes, which is what lets Close guarantee quiescence.
func (m *TimerManager) fire(st *timerState) {
	m.mu.Lock()
	if m.closed || m.timers[st.name] != st {
		// Cancelled (Close or re-arm) between the callback starting and
		// the latch: deliver nothing.
		m.mu.Unlock()
		m.wg.Done()
		return
	}
	st.seq++
	seq := st.seq
	now := m.clk.Now()
	m.mu.Unlock()

	obj := &monitor.TimerObject{Name: st.name, Now: now, Seq: seq}
	m.dispatcher.Dispatch(monitor.EvTimerAlarm, map[string]monitor.Object{
		monitor.ClassTimer: obj,
	})

	m.mu.Lock()
	if !m.closed && m.timers[st.name] == st {
		// A dispatched action may have re-armed or disabled this very
		// timer (SetTimer from a rule); only the still-current state
		// schedules the next alarm or expires the schedule.
		if st.count > 0 && int(seq) >= st.count {
			delete(m.timers, st.name)
		} else {
			m.wg.Add(1)
			//sqlcm:allow AfterFunc defers fire (see Set); re-arming under the latch is the identity-check invariant
			st.timer = m.clk.AfterFunc(st.period, func() { m.fire(st) })
		}
	}
	m.mu.Unlock()
	m.wg.Done()
}
