package rules

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"sqlcm/internal/lat"
	"sqlcm/internal/monitor"
	"sqlcm/internal/sqltypes"
)

// flakyEnv wraps fakeEnv with a Persist that fails after allow calls.
type flakyEnv struct {
	*fakeEnv
	mu    sync.Mutex
	allow int
}

var errFlaky = errors.New("persist refused")

func (f *flakyEnv) Persist(table string, cols []string, kinds []sqltypes.Kind, row []sqltypes.Value) error {
	f.mu.Lock()
	ok := f.allow > 0
	if ok {
		f.allow--
	}
	f.mu.Unlock()
	if !ok {
		return errFlaky
	}
	return f.fakeEnv.Persist(table, cols, kinds, row)
}

func TestPersistActionLATFailureMidway(t *testing.T) {
	// env.Persist dies after the second row of a three-row LAT persist: the
	// action must surface the error, with exactly the rows written before
	// the failure recorded.
	env := &flakyEnv{fakeEnv: newFakeEnv(), allow: 2}
	table, err := lat.New(lat.Spec{
		Name:    "L",
		GroupBy: []string{"ID"},
		Aggs:    []lat.AggCol{{Func: lat.Count, Name: "N"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.lats["L"] = table
	for i := int64(1); i <= 3; i++ {
		obj := queryObj(i, "s", 1)
		if err := table.Insert(func(ref string) (sqltypes.Value, bool) { return obj.Get(ref) }); err != nil {
			t.Fatal(err)
		}
	}
	a := &PersistAction{Table: "out", FromLAT: "L"}
	err = a.Run(env, &Ctx{})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want injected persist failure", err)
	}
	if got := len(env.persisted); got != 2 {
		t.Fatalf("rows persisted before failure: %d, want 2", got)
	}
}

func TestPersistActionUnresolvedAttribute(t *testing.T) {
	env := newFakeEnv()
	a := &PersistAction{Table: "out", Attrs: []string{"ID", "No_Such_Attr"}}
	obj := queryObj(1, "s", 1)
	ctx := &Ctx{Objects: map[string]monitor.Object{monitor.ClassQuery: obj}, Primary: obj}
	err := a.Run(env, ctx)
	if err == nil || !strings.Contains(err.Error(), "unresolved attribute") {
		t.Fatalf("err = %v, want unresolved attribute", err)
	}
	if len(env.persisted) != 0 {
		t.Fatalf("partial row persisted despite unresolved attribute: %v", env.persisted)
	}
}

func TestPersistActionColumnCollision(t *testing.T) {
	env := newFakeEnv()
	a := &PersistAction{Table: "out", Attrs: []string{"Blocker.Duration", "Blocker_Duration"}}
	blocker := &fakeObj{class: monitor.ClassBlocker, attrs: map[string]sqltypes.Value{
		"Duration": sqltypes.NewFloat(1),
	}}
	obj := &fakeObj{class: monitor.ClassQuery, attrs: map[string]sqltypes.Value{
		"Blocker_Duration": sqltypes.NewFloat(2),
	}}
	ctx := &Ctx{Objects: map[string]monitor.Object{
		monitor.ClassQuery:   obj,
		monitor.ClassBlocker: blocker,
	}, Primary: obj}
	err := a.Run(env, ctx)
	if err == nil || !strings.Contains(err.Error(), "both map to column") {
		t.Fatalf("err = %v, want column collision", err)
	}
}

func TestQuarantineAfterConsecutivePanics(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	e.SetQuarantineThreshold(2)
	var infos []QuarantineInfo
	var mu sync.Mutex
	e.SetOnQuarantine(func(info QuarantineInfo) {
		mu.Lock()
		infos = append(infos, info)
		mu.Unlock()
	})
	if err := e.AddRule(&Rule{
		Name:  "bad",
		Event: monitor.EvQueryCommit,
		Actions: []Action{&FuncAction{Fn: func(Env, *Ctx) error {
			panic("kaboom")
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		dispatchQuery(e, queryObj(int64(i), "s", 1))
	}
	if !e.Quarantined("bad") {
		t.Fatal("rule not quarantined")
	}
	if got := e.Stats().Panics; got != 2 {
		t.Fatalf("panics: %d, want 2 (evaluation stops at quarantine)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(infos) != 1 || infos[0].Rule != "bad" || infos[0].Failures != 2 ||
		!strings.Contains(infos[0].Err, "kaboom") {
		t.Fatalf("quarantine info: %+v", infos)
	}
}

func TestQuarantineResetOnSuccess(t *testing.T) {
	// A rule that panics intermittently — never hitting the consecutive
	// threshold — stays live.
	env := newFakeEnv()
	e := NewEngine(env)
	e.SetQuarantineThreshold(3)
	n := 0
	if err := e.AddRule(&Rule{
		Name:  "flappy",
		Event: monitor.EvQueryCommit,
		Actions: []Action{&FuncAction{Fn: func(Env, *Ctx) error {
			n++
			if n%3 == 0 {
				return nil // every third evaluation succeeds
			}
			panic("flap")
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		dispatchQuery(e, queryObj(int64(i), "s", 1))
	}
	if e.Quarantined("flappy") {
		t.Fatal("intermittent rule quarantined despite successes resetting the streak")
	}
}

func TestReinstateUnknownRule(t *testing.T) {
	e := NewEngine(newFakeEnv())
	if e.Reinstate("ghost") {
		t.Fatal("reinstated a rule that does not exist")
	}
}
