package rules

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// DefaultQuarantineThreshold is the number of consecutive panicking
// evaluations after which a rule is quarantined when no explicit threshold
// is configured.
const DefaultQuarantineThreshold = 3

// QuarantineInfo describes one quarantine decision; it is handed to the
// engine's quarantine callback (and from there dispatched through the event
// bus as Monitor.RuleQuarantined).
type QuarantineInfo struct {
	Rule     string
	Failures int64
	Err      string
	At       time.Time
}

// SetQuarantineThreshold sets how many consecutive panicking evaluations
// quarantine a rule. Zero restores the default; a negative value disables
// quarantining (panics are still recovered and counted).
func (e *Engine) SetQuarantineThreshold(n int) {
	e.quarantineAfter.Store(int64(n))
}

// quarantineThreshold resolves the effective threshold (<0 = disabled).
func (e *Engine) quarantineThreshold() int64 {
	n := e.quarantineAfter.Load()
	if n == 0 {
		return DefaultQuarantineThreshold
	}
	return n
}

// SetOnQuarantine installs the callback invoked after a rule is
// quarantined. The callback runs in the thread that evaluated the failing
// rule, outside the engine's registration lock, so it may safely dispatch
// events or register rules.
func (e *Engine) SetOnQuarantine(fn func(QuarantineInfo)) {
	if fn == nil {
		e.onQuarantine.Store(nil)
		return
	}
	e.onQuarantine.Store(&fn)
}

// Quarantined reports whether the named rule is currently quarantined.
func (e *Engine) Quarantined(name string) bool {
	r, ok := e.Rule(name)
	return ok && r.quarantined.Load()
}

// QuarantinedRules returns the names of quarantined rules in registration
// order.
func (e *Engine) QuarantinedRules() []string {
	var out []string
	for _, r := range e.idx.Load().rules {
		if r.quarantined.Load() {
			out = append(out, r.Name)
		}
	}
	return out
}

// Reinstate lifts a rule's quarantine and republishes it in the dispatch
// index. It reports whether the rule existed and was quarantined.
func (e *Engine) Reinstate(name string) bool {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	for _, r := range e.idx.Load().rules {
		if r.Name == name {
			if !r.quarantined.Swap(false) {
				return false
			}
			r.consecFails.Store(0)
			e.idx.Store(buildIndex(e.idx.Load().rules))
			return true
		}
	}
	return false
}

// safeEvalRule evaluates one rule against one context with panic
// isolation: a panic in the condition or in any action is recovered,
// counted, and — after quarantineThreshold consecutive panicking
// evaluations — quarantines the rule. A fully non-panicking evaluation
// resets the rule's consecutive-failure count. The query thread that
// raised the event never observes the failure.
func (e *Engine) safeEvalRule(r *Rule, ctx *Ctx) {
	err := e.evalRuleRecover(r, ctx)
	if err == nil {
		r.consecFails.Store(0)
		return
	}
	e.panics.Add(1)
	e.actionErrs.Add(1)
	fails := int64(r.consecFails.Add(1))
	limit := e.quarantineThreshold()
	if limit < 0 || fails < limit || r.quarantined.Load() {
		return
	}
	e.quarantine(r, fails, err)
}

// evalRuleRecover runs one evaluation under recover, converting a panic in
// the condition or the action list into an error.
//
//sqlcm:recovered
func (e *Engine) evalRuleRecover(r *Rule, ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("rules: rule %q panicked: %v\n%s", r.Name, p, debug.Stack())
		}
	}()
	e.evalRule(r, ctx)
	return nil
}

// quarantine removes the rule from the dispatch index (copy-on-write: the
// published per-event lists simply omit it) and notifies the quarantine
// callback outside the registration lock.
func (e *Engine) quarantine(r *Rule, fails int64, cause error) {
	e.writeMu.Lock()
	if r.quarantined.Swap(true) {
		e.writeMu.Unlock()
		return // lost a race with a concurrent quarantine of the same rule
	}
	e.idx.Store(buildIndex(e.idx.Load().rules))
	e.writeMu.Unlock()
	e.quarantines.Add(1)
	if fn := e.onQuarantine.Load(); fn != nil {
		(*fn)(QuarantineInfo{Rule: r.Name, Failures: fails, Err: cause.Error(), At: time.Now()})
	}
}

// failsafeState carries the engine's fail-safe configuration and counters;
// embedded in Engine.
type failsafeState struct {
	// quarantineAfter is the configured threshold (0 = default, <0 = off).
	quarantineAfter atomic.Int64
	// onQuarantine is the installed quarantine callback, if any.
	onQuarantine atomic.Pointer[func(QuarantineInfo)]

	panics      atomic.Int64
	quarantines atomic.Int64
}
