package rules

import (
	"fmt"
	"strings"

	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
)

// Conditions are compiled once at rule-registration time into a tree of
// closures; per-event evaluation then involves no AST traversal. This is
// what keeps rule evaluation cheap enough to run hundreds of times per
// query (§2.1: "ECA rules are amenable to implementation with low CPU and
// memory overheads").

// evalState is the per-evaluation scratch: the rule context plus the
// memoized LAT-row lookups.
type evalState struct {
	eng     *Engine
	ctx     *Ctx
	latRows map[string][]sqltypes.Value
}

// condFn evaluates one compiled node: value, missing-LAT-row flag, error.
type condFn func(st *evalState) (sqltypes.Value, bool, error)

// compileCond compiles a condition expression. Returns nil for a nil
// expression (always-true rules).
func compileCond(e sqlparser.Expr) (condFn, error) {
	if e == nil {
		return nil, nil
	}
	switch x := e.(type) {
	case *sqlparser.Literal:
		v := x.Val
		return func(*evalState) (sqltypes.Value, bool, error) { return v, false, nil }, nil

	case *sqlparser.Param:
		return nil, fmt.Errorf("rules: parameters not allowed in conditions")

	case *sqlparser.ColumnRef:
		return compileRef(x), nil

	case *sqlparser.Arith:
		l, err := compileCond(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := compileCond(x.Right)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(st *evalState) (sqltypes.Value, bool, error) {
			lv, m, err := l(st)
			if err != nil || m {
				return sqltypes.Null, m, err
			}
			rv, m, err := r(st)
			if err != nil || m {
				return sqltypes.Null, m, err
			}
			v, err := sqltypes.Arith(op, lv, rv)
			return v, false, err
		}, nil

	case *sqlparser.Comparison:
		l, err := compileCond(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := compileCond(x.Right)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(st *evalState) (sqltypes.Value, bool, error) {
			lv, m, err := l(st)
			if err != nil || m {
				return sqltypes.Null, m, err
			}
			rv, m, err := r(st)
			if err != nil || m {
				return sqltypes.Null, m, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, false, nil
			}
			c := sqltypes.Compare(lv, rv)
			var out bool
			switch op {
			case sqlparser.CmpEq:
				out = c == 0
			case sqlparser.CmpNe:
				out = c != 0
			case sqlparser.CmpLt:
				out = c < 0
			case sqlparser.CmpLe:
				out = c <= 0
			case sqlparser.CmpGt:
				out = c > 0
			case sqlparser.CmpGe:
				out = c >= 0
			}
			return sqltypes.NewBool(out), false, nil
		}, nil

	case *sqlparser.Logic:
		l, err := compileCond(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := compileCond(x.Right)
		if err != nil {
			return nil, err
		}
		and := x.Op == sqlparser.LogicAnd
		return func(st *evalState) (sqltypes.Value, bool, error) {
			lv, m1, err := l(st)
			if err != nil {
				return sqltypes.Null, false, err
			}
			lTrue := !m1 && !lv.IsNull() && truthy(lv)
			lFalse := m1 || (!lv.IsNull() && !truthy(lv))
			if and && lFalse {
				return sqltypes.NewBool(false), false, nil
			}
			if !and && lTrue {
				return sqltypes.NewBool(true), false, nil
			}
			rv, m2, err := r(st)
			if err != nil {
				return sqltypes.Null, false, err
			}
			rTrue := !m2 && !rv.IsNull() && truthy(rv)
			if and {
				return sqltypes.NewBool(lTrue && rTrue), false, nil
			}
			return sqltypes.NewBool(lTrue || rTrue), false, nil
		}, nil

	case *sqlparser.Not:
		inner, err := compileCond(x.Expr)
		if err != nil {
			return nil, err
		}
		return func(st *evalState) (sqltypes.Value, bool, error) {
			v, m, err := inner(st)
			if err != nil {
				return sqltypes.Null, false, err
			}
			in := !m && !v.IsNull() && truthy(v)
			return sqltypes.NewBool(!in), false, nil
		}, nil

	case *sqlparser.Neg:
		inner, err := compileCond(x.Expr)
		if err != nil {
			return nil, err
		}
		return func(st *evalState) (sqltypes.Value, bool, error) {
			v, m, err := inner(st)
			if err != nil || m {
				return sqltypes.Null, m, err
			}
			out, err := sqltypes.Negate(v)
			return out, false, err
		}, nil

	case *sqlparser.IsNull:
		inner, err := compileCond(x.Expr)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(st *evalState) (sqltypes.Value, bool, error) {
			v, m, err := inner(st)
			if err != nil {
				return sqltypes.Null, false, err
			}
			isNull := m || v.IsNull()
			return sqltypes.NewBool(isNull != negate), false, nil
		}, nil

	default:
		return nil, fmt.Errorf("rules: unsupported condition node %T", e)
	}
}

// compileRef compiles an attribute or LAT-column reference. Whether the
// qualifier names a monitored class or a LAT is decided per evaluation
// (the object may be bound by the event, and LATs can be defined after the
// rule), but the reference pieces are pre-split.
func compileRef(c *sqlparser.ColumnRef) condFn {
	qual, col := c.Table, c.Column
	if qual == "" {
		return func(st *evalState) (sqltypes.Value, bool, error) {
			if st.ctx.Primary == nil {
				return sqltypes.Null, false, fmt.Errorf("rules: unqualified attribute %q with no primary object", col)
			}
			v, ok := st.ctx.Primary.Get(col)
			if !ok {
				return sqltypes.Null, false, fmt.Errorf("rules: %s has no attribute %q", st.ctx.Primary.Class(), col)
			}
			return v, false, nil
		}
	}
	isClass := knownClasses[qual]
	return func(st *evalState) (sqltypes.Value, bool, error) {
		if obj, ok := st.ctx.Objects[qual]; ok {
			v, found := obj.Get(col)
			if !found {
				return sqltypes.Null, false, fmt.Errorf("rules: %s has no attribute %q", qual, col)
			}
			return v, false, nil
		}
		if isClass {
			return sqltypes.Null, false, fmt.Errorf("rules: no %s object in context", qual)
		}
		// LAT reference: memoized ∃-quantified row lookup.
		table, ok := st.eng.env.LAT(qual)
		if !ok {
			return sqltypes.Null, false, fmt.Errorf("rules: unknown object or LAT %q", qual)
		}
		row, cached := st.latRows[qual]
		if !cached {
			var found bool
			row, found = table.LookupByGetter(st.ctx.Attr)
			if !found {
				return sqltypes.Null, true, nil
			}
			if st.latRows == nil {
				st.latRows = make(map[string][]sqltypes.Value, 2)
			}
			st.latRows[qual] = row
		}
		idx := table.ColumnIndex(col)
		if idx < 0 {
			return sqltypes.Null, false, fmt.Errorf("rules: LAT %s has no column %q", qual, col)
		}
		return row[idx], false, nil
	}
}

// describeActions renders a rule's action list for diagnostics.
func describeActions(actions []Action) string {
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.Describe()
	}
	return strings.Join(parts, "; ")
}
