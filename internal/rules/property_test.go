package rules

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sqlcm/internal/monitor"
	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
)

// refEval is an independent big-step reference interpreter for rule
// conditions over a single object, used to cross-check the engine's
// evaluator on randomly generated expressions. NULL propagation follows
// SQL three-valued logic collapsed to {true, false} at the root
// (condition semantics: non-true is false).
type refValue struct {
	null bool
	f    float64
}

func refEvalExpr(e sqlparser.Expr, attrs map[string]float64, nulls map[string]bool) (refValue, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		if x.Val.IsNull() {
			return refValue{null: true}, nil
		}
		f, ok := x.Val.AsFloat()
		if !ok {
			return refValue{}, fmt.Errorf("non-numeric literal")
		}
		return refValue{f: f}, nil
	case *sqlparser.ColumnRef:
		if nulls[x.Column] {
			return refValue{null: true}, nil
		}
		v, ok := attrs[x.Column]
		if !ok {
			return refValue{}, fmt.Errorf("unknown attr %s", x.Column)
		}
		return refValue{f: v}, nil
	case *sqlparser.Arith:
		l, err := refEvalExpr(x.Left, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		r, err := refEvalExpr(x.Right, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		if l.null || r.null {
			return refValue{null: true}, nil
		}
		switch x.Op.String() {
		case "+":
			return refValue{f: l.f + r.f}, nil
		case "-":
			return refValue{f: l.f - r.f}, nil
		case "*":
			return refValue{f: l.f * r.f}, nil
		default:
			return refValue{}, fmt.Errorf("op %s", x.Op)
		}
	case *sqlparser.Comparison:
		l, err := refEvalExpr(x.Left, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		r, err := refEvalExpr(x.Right, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		if l.null || r.null {
			return refValue{null: true}, nil
		}
		var b bool
		switch x.Op {
		case sqlparser.CmpEq:
			b = l.f == r.f
		case sqlparser.CmpNe:
			b = l.f != r.f
		case sqlparser.CmpLt:
			b = l.f < r.f
		case sqlparser.CmpLe:
			b = l.f <= r.f
		case sqlparser.CmpGt:
			b = l.f > r.f
		case sqlparser.CmpGe:
			b = l.f >= r.f
		}
		return refValue{f: b2f(b)}, nil
	case *sqlparser.Logic:
		l, err := refEvalExpr(x.Left, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		r, err := refEvalExpr(x.Right, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		// Collapsed 3VL as the engine implements it for conditions:
		// each side is "true" iff non-null and truthy.
		lt := !l.null && l.f != 0
		rt := !r.null && r.f != 0
		if x.Op == sqlparser.LogicAnd {
			return refValue{f: b2f(lt && rt)}, nil
		}
		return refValue{f: b2f(lt || rt)}, nil
	case *sqlparser.Not:
		v, err := refEvalExpr(x.Expr, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		return refValue{f: b2f(!(!v.null && v.f != 0))}, nil
	case *sqlparser.Neg:
		v, err := refEvalExpr(x.Expr, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		if v.null {
			return refValue{null: true}, nil
		}
		return refValue{f: -v.f}, nil
	case *sqlparser.IsNull:
		v, err := refEvalExpr(x.Expr, attrs, nulls)
		if err != nil {
			return refValue{}, err
		}
		return refValue{f: b2f(v.null != x.Negate)}, nil
	default:
		return refValue{}, fmt.Errorf("node %T", e)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// genCondition produces a random condition string over attributes a..e.
func genCondition(r *rand.Rand, depth int) string {
	attrs := []string{"a", "b", "c", "d", "e"}
	if depth <= 0 || r.Intn(4) == 0 {
		// atomic comparison
		lhs := genArith(r, attrs, 3)
		rhs := genArith(r, attrs, 3)
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		if r.Intn(6) == 0 {
			if r.Intn(2) == 0 {
				return "(" + lhs + ") IS NULL"
			}
			return "(" + lhs + ") IS NOT NULL"
		}
		return lhs + " " + ops[r.Intn(len(ops))] + " " + rhs
	}
	switch r.Intn(3) {
	case 0:
		return "(" + genCondition(r, depth-1) + ") AND (" + genCondition(r, depth-1) + ")"
	case 1:
		return "(" + genCondition(r, depth-1) + ") OR (" + genCondition(r, depth-1) + ")"
	default:
		return "NOT (" + genCondition(r, depth-1) + ")"
	}
}

func genArith(r *rand.Rand, attrs []string, depth int) string {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return fmt.Sprintf("%d", r.Intn(10))
		}
		return attrs[r.Intn(len(attrs))]
	}
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", r.Intn(10))
	case 1:
		return attrs[r.Intn(len(attrs))]
	case 2:
		return "(" + genArith(r, attrs, depth-1) + " + " + genArith(r, attrs, depth-1) + ")"
	default:
		return "(" + genArith(r, attrs, depth-1) + " * " + genArith(r, attrs, depth-1) + ")"
	}
}

func TestConditionEvaluatorMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	env := newFakeEnv()
	e := NewEngine(env)

	for trial := 0; trial < 2000; trial++ {
		src := genCondition(r, 3)
		cond, err := ParseCondition(src)
		if err != nil {
			t.Fatalf("generated condition does not parse: %q: %v", src, err)
		}
		attrs := map[string]float64{}
		nulls := map[string]bool{}
		objAttrs := map[string]sqltypes.Value{}
		for _, a := range []string{"a", "b", "c", "d", "e"} {
			if r.Intn(8) == 0 {
				nulls[a] = true
				objAttrs[a] = sqltypes.Null
				continue
			}
			v := float64(r.Intn(7) - 3)
			attrs[a] = v
			objAttrs[a] = sqltypes.NewFloat(v)
		}
		obj := &fakeObj{class: monitor.ClassQuery, attrs: objAttrs}
		ctx := &Ctx{Objects: map[string]monitor.Object{monitor.ClassQuery: obj}, Primary: obj}

		got, err := e.evalCond(cond, ctx)
		if err != nil {
			t.Fatalf("engine eval of %q: %v", src, err)
		}
		ref, err := refEvalExpr(cond, attrs, nulls)
		if err != nil {
			t.Fatalf("reference eval of %q: %v", src, err)
		}
		want := !ref.null && ref.f != 0
		if got != want {
			t.Fatalf("trial %d: %q with attrs=%v nulls=%v: engine=%v reference=%v",
				trial, src, attrs, nulls, got, want)
		}
	}
}

// TestConditionParsingRejectsGarbage ensures malformed conditions surface
// as errors at rule-definition time, not at dispatch.
func TestConditionParsingRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"Query.Duration >",
		"AND Query.Duration",
		"Query.Duration > 5 5",
		"((Query.Duration > 1)",
	} {
		if _, err := ParseCondition(src); err == nil {
			t.Errorf("ParseCondition(%q) should fail", src)
		}
	}
	// Empty conditions are the "always fire" case.
	if cond, err := ParseCondition("   "); err != nil || cond != nil {
		t.Error("blank condition should be nil, nil")
	}
}

// TestDispatchUnderConcurrentRuleChanges exercises add/remove/toggle while
// events are being dispatched (rules can be changed dynamically, §3).
func TestDispatchUnderConcurrentRuleChanges(t *testing.T) {
	env := newFakeEnv()
	e := NewEngine(env)
	stop := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			name := fmt.Sprintf("dyn%d", i)
			e.AddRule(&Rule{ //nolint:errcheck
				Name: name, Event: monitor.EvQueryCommit,
				Actions: []Action{&FuncAction{Fn: func(Env, *Ctx) error { return nil }}},
			})
			if r, ok := e.Rule(name); ok {
				r.SetEnabled(false)
				r.SetEnabled(true)
			}
			e.RemoveRule(name)
		}
	}()
	for i := 0; i < 5000; i++ {
		dispatchQuery(e, queryObj(int64(i), "s", 1))
	}
	close(stop)
}

func TestFig2StyleConditionsParse(t *testing.T) {
	// The harness builds long AND-chains; make sure a 50-atom condition
	// parses and evaluates in one pass.
	parts := make([]string, 50)
	for i := range parts {
		parts[i] = "Query.Duration >= 0"
	}
	cond, err := ParseCondition(strings.Join(parts, " AND "))
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	e := NewEngine(env)
	obj := queryObj(1, "s", 5)
	ok, err := e.evalCond(cond, &Ctx{
		Objects: map[string]monitor.Object{monitor.ClassQuery: obj},
		Primary: obj,
	})
	if err != nil || !ok {
		t.Fatalf("50-atom condition: ok=%v err=%v", ok, err)
	}
}
