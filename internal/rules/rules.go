// Package rules implements SQLCM's ECA rule engine (§5): declarative
// Event-Condition-Action rules evaluated synchronously in the thread that
// raised the event, in fixed rule order, with conditions over monitored
// object attributes and LAT columns, and a small set of actions (Insert,
// Reset, Persist, SendMail, RunExternal, Cancel, Set).
package rules

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sqlcm/internal/lat"
	"sqlcm/internal/lockcheck"
	"sqlcm/internal/monitor"
	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
)

// Ctx is the evaluation context of one rule invocation: the monitored
// objects in scope, keyed by class.
type Ctx struct {
	Objects map[string]monitor.Object
	// Primary is the object bound by the rule's event clause; unqualified
	// and LAT-grouping attribute references resolve against it.
	Primary monitor.Object
}

// Object returns the in-context object of a class.
func (c *Ctx) Object(class string) (monitor.Object, bool) {
	o, ok := c.Objects[class]
	return o, ok
}

// Attr resolves an attribute reference: "Class.Name" against the class
// object, a bare name against the primary object.
func (c *Ctx) Attr(ref string) (sqltypes.Value, bool) {
	if class, name, ok := strings.Cut(ref, "."); ok {
		if o, found := c.Objects[class]; found {
			return o.Get(name)
		}
		return sqltypes.Null, false
	}
	if c.Primary == nil {
		return sqltypes.Null, false
	}
	return c.Primary.Get(ref)
}

// Env supplies the engine-side capabilities actions need. The core package
// implements it over the database engine.
type Env interface {
	// LAT resolves a registered aggregation table.
	LAT(name string) (*lat.Table, bool)
	// Persist writes one row (with a timestamp column appended) to a
	// disk-resident table, creating the table on first use.
	Persist(table string, cols []string, kinds []sqltypes.Kind, row []sqltypes.Value) error
	// SendMail delivers a notification.
	SendMail(addr, body string) error
	// RunExternal launches an external command.
	RunExternal(cmd string) error
	// CancelQuery cancels a statement by id.
	CancelQuery(id int64) bool
	// SetTimer arms a named timer (§5.3 Set action): count alarms of the
	// given period; count 0 disables, negative repeats forever.
	SetTimer(name string, period time.Duration, count int) error
	// ActiveQueryObjects returns all live Query objects (for rules whose
	// condition references a class the event does not bind).
	ActiveQueryObjects() []monitor.Object
	// BlockPairObjects returns current (Blocker, Blocked) object pairs
	// from the lock-wait graph.
	BlockPairObjects() [][2]monitor.Object
}

// Action is one step of a rule's action list.
type Action interface {
	// Run executes the action; errors are recorded but do not stop later
	// actions or corrupt rule ordering.
	Run(env Env, ctx *Ctx) error
	// Describe renders the action for diagnostics.
	Describe() string
}

// Rule is one ECA rule.
type Rule struct {
	Name      string
	Event     monitor.Event
	Condition sqlparser.Expr // nil = always true
	Actions   []Action

	enabled atomic.Bool
	// quarantined marks a rule removed from dispatch after repeated
	// panicking evaluations (see failsafe.go); distinct from enabled so an
	// operator toggle does not silently clear a health-based removal.
	quarantined atomic.Bool
	// consecFails counts consecutive panicking evaluations.
	consecFails atomic.Int32
	// cond is the condition compiled to closures at registration time.
	cond condFn
	// classes referenced by the condition but not bound by the event; the
	// engine iterates over all live objects of these classes (§5.2).
	freeClasses []string
	// lats referenced by the condition.
	latRefs []string
}

// Enabled reports whether the rule participates in dispatch.
func (r *Rule) Enabled() bool { return r.enabled.Load() }

// SetEnabled toggles the rule (rules can be turned on/off dynamically, §3).
func (r *Rule) SetEnabled(v bool) { r.enabled.Store(v) }

// knownClasses is the set of monitored classes for reference resolution.
var knownClasses = map[string]bool{
	monitor.ClassQuery:       true,
	monitor.ClassTransaction: true,
	monitor.ClassBlocker:     true,
	monitor.ClassBlocked:     true,
	monitor.ClassTimer:       true,
	monitor.ClassLATRow:      true,
	monitor.ClassMonitor:     true,
}

// ruleIndex is an immutable snapshot of the registered rule set. Readers
// load it through an atomic pointer and never take a lock; writers rebuild
// a fresh index and publish it (copy-on-write). The per-event dispatch
// lists preserve registration order (§5: fixed rule order).
type ruleIndex struct {
	rules   []*Rule
	byEvent map[monitor.Event][]*Rule
}

// buildIndex constructs the immutable index for a rule slice. Quarantined
// rules stay in the rule list (visible to introspection and Reinstate) but
// are omitted from the per-event dispatch lists, so the hot path pays
// nothing for them.
func buildIndex(rules []*Rule) *ruleIndex {
	idx := &ruleIndex{rules: rules, byEvent: make(map[monitor.Event][]*Rule)}
	for _, r := range rules {
		if r.quarantined.Load() {
			continue
		}
		idx.byEvent[r.Event] = append(idx.byEvent[r.Event], r)
	}
	return idx
}

// Engine evaluates rules. Rules fire in registration order; within one
// event all applicable rules run before control returns to the engine
// (§5: fixed order, synchronous, no recursive triggering — events raised
// by actions are not dispatched re-entrantly).
//
// Rule lookup is lock-free: the hot path (Dispatch, HasRulesFor,
// HasAnyRules) reads an atomically published copy-on-write index, so
// firing a rule in the query thread never acquires a mutex and never
// contends with rule registration.
type Engine struct {
	env Env

	// writeMu serializes AddRule/RemoveRule/quarantine; its only protected
	// state is the COW index below, published by Store, so it guards no
	// plain fields.
	//sqlcm:lock rules.write
	//sqlcm:guards none
	writeMu lockcheck.Mutex
	// idx is the published rule index: readers Load lock-free, writers
	// rebuild under writeMu and swap.
	//sqlcm:cow rules.write
	idx atomic.Pointer[ruleIndex]

	evaluations atomic.Int64
	fired       atomic.Int64
	actionErrs  atomic.Int64

	// observer, when installed, sees every rule evaluation in dispatch
	// order (the simulation harness compares this stream against its
	// sequential oracle). One atomic load on the hot path when unset.
	observer atomic.Pointer[func(rule string, fired bool)]

	failsafeState
}

// SetEvalObserver installs (or with nil clears) a callback invoked after
// every rule evaluation with the rule name and whether its condition held.
// Invocations follow dispatch order; the callback runs synchronously on
// the dispatching goroutine, so it must be cheap and must not dispatch.
func (e *Engine) SetEvalObserver(fn func(rule string, fired bool)) {
	if fn == nil {
		e.observer.Store(nil)
		return
	}
	e.observer.Store(&fn)
}

// NewEngine creates a rule engine over env.
func NewEngine(env Env) *Engine {
	e := &Engine{env: env}
	e.writeMu.SetClass("rules.write")
	e.idx.Store(buildIndex(nil))
	return e
}

// HasAnyRules reports whether any rule is registered at all; with no rules
// the monitoring glue skips even probe assembly and signature computation.
func (e *Engine) HasAnyRules() bool {
	return len(e.idx.Load().rules) > 0
}

// HasRulesFor reports whether any rule listens on ev. The monitoring glue
// uses it to skip object construction entirely when no rule needs the
// event — "no monitoring is performed unless it is required by a rule"
// (§2.1).
func (e *Engine) HasRulesFor(ev monitor.Event) bool {
	return len(e.idx.Load().byEvent[ev]) > 0
}

// Stats reports rule-engine counters.
type Stats struct {
	Evaluations int64 // condition evaluations (one per object combination)
	Fired       int64 // rule firings (condition true)
	ActionErrs  int64
	Panics      int64 // recovered panics in conditions or actions
	Quarantines int64 // rules removed from dispatch after repeated panics
	Rules       int
}

// Stats returns a snapshot of counters.
func (e *Engine) Stats() Stats {
	n := len(e.idx.Load().rules)
	return Stats{
		Evaluations: e.evaluations.Load(),
		Fired:       e.fired.Load(),
		ActionErrs:  e.actionErrs.Load(),
		Panics:      e.panics.Load(),
		Quarantines: e.quarantines.Load(),
		Rules:       n,
	}
}

// AddRule registers a rule (enabled). Rules added later evaluate later.
func (e *Engine) AddRule(r *Rule) error {
	if r.Name == "" {
		return fmt.Errorf("rules: rule needs a name")
	}
	if r.Event.Class == "" {
		return fmt.Errorf("rules: rule %q needs an event", r.Name)
	}
	if err := r.analyze(); err != nil {
		return err
	}
	r.enabled.Store(true)
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.idx.Load()
	for _, existing := range cur.rules {
		if existing.Name == r.Name {
			return fmt.Errorf("rules: duplicate rule %q", r.Name)
		}
	}
	next := make([]*Rule, 0, len(cur.rules)+1)
	next = append(next, cur.rules...)
	next = append(next, r)
	e.idx.Store(buildIndex(next))
	return nil
}

// RemoveRule unregisters a rule by name.
func (e *Engine) RemoveRule(name string) bool {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.idx.Load()
	for i, r := range cur.rules {
		if r.Name == name {
			next := make([]*Rule, 0, len(cur.rules)-1)
			next = append(next, cur.rules[:i]...)
			next = append(next, cur.rules[i+1:]...)
			e.idx.Store(buildIndex(next))
			return true
		}
	}
	return false
}

// Rule returns a registered rule by name.
func (e *Engine) Rule(name string) (*Rule, bool) {
	for _, r := range e.idx.Load().rules {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// Rules returns the registered rule names in evaluation order.
func (e *Engine) Rules() []string {
	rules := e.idx.Load().rules
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name
	}
	return out
}

// analyze compiles the condition and extracts its free classes and LAT
// references.
func (r *Rule) analyze() error {
	classes := map[string]bool{}
	lats := map[string]bool{}
	sqlparser.WalkExpr(r.Condition, func(x sqlparser.Expr) {
		c, ok := x.(*sqlparser.ColumnRef)
		if !ok || c.Table == "" {
			return
		}
		if knownClasses[c.Table] {
			classes[c.Table] = true
		} else {
			lats[c.Table] = true
		}
	})
	r.freeClasses = r.freeClasses[:0]
	for cl := range classes {
		if cl != r.Event.Class {
			r.freeClasses = append(r.freeClasses, cl)
		}
	}
	r.latRefs = r.latRefs[:0]
	for l := range lats {
		r.latRefs = append(r.latRefs, l)
	}
	fn, err := compileCond(r.Condition)
	if err != nil {
		return err
	}
	r.cond = fn
	return nil
}

// Dispatch delivers one event with its bound objects to every matching
// rule, synchronously in the caller's thread and in registration order
// (§5: fixed rule order; all applicable rules run before the engine
// resumes).
//
//sqlcm:hotpath
func (e *Engine) Dispatch(ev monitor.Event, objs map[string]monitor.Object) {
	// Lock-free: one atomic load of the copy-on-write index, then only the
	// rules listening on this event are visited.
	matching := e.idx.Load().byEvent[ev]
	if len(matching) == 0 {
		return
	}

	base := Ctx{Objects: objs, Primary: objs[ev.Class]}
	if base.Primary == nil {
		for _, o := range objs {
			base.Primary = o
			break
		}
	}
	for _, r := range matching {
		if !r.Enabled() {
			continue
		}
		if len(r.freeClasses) == 0 {
			e.safeEvalRule(r, &base)
			continue
		}
		for _, ctx := range e.expand(r, ev, objs) {
			e.safeEvalRule(r, ctx)
		}
	}
}

// evalRule evaluates one rule against one object combination. It runs
// user rule code (condition and actions), so it must only be reached
// through a recover-protected wrapper.
//
//sqlcm:hotpath
//sqlcm:callback
func (e *Engine) evalRule(r *Rule, ctx *Ctx) {
	e.evaluations.Add(1)
	if r.cond != nil {
		ok, err := e.runCond(r.cond, ctx)
		if err != nil {
			e.actionErrs.Add(1)
			e.observe(r.Name, false)
			return
		}
		if !ok {
			e.observe(r.Name, false)
			return
		}
	}
	e.fired.Add(1)
	e.observe(r.Name, true)
	for _, a := range r.Actions {
		if err := a.Run(e.env, ctx); err != nil {
			e.actionErrs.Add(1)
		}
	}
}

// observe forwards one evaluation to the installed observer, if any.
//
//sqlcm:hotpath
func (e *Engine) observe(rule string, fired bool) {
	if fn := e.observer.Load(); fn != nil {
		(*fn)(rule, fired)
	}
}

// expand produces the object combinations a rule evaluates over: the bound
// event objects crossed with all live objects of every free class (§5.2).
func (e *Engine) expand(r *Rule, ev monitor.Event, objs map[string]monitor.Object) []*Ctx {
	base := &Ctx{Objects: objs, Primary: objs[ev.Class]}
	if base.Primary == nil {
		// Events like Timer.Alarm bind the timer object as primary.
		for _, o := range objs {
			base.Primary = o
			break
		}
	}
	out := []*Ctx{base}
	for _, class := range r.freeClasses {
		if _, bound := objs[class]; bound {
			continue
		}
		var candidates []monitor.Object
		switch class {
		case monitor.ClassQuery:
			candidates = e.env.ActiveQueryObjects()
		case monitor.ClassBlocker, monitor.ClassBlocked:
			// Blocker/Blocked come in pairs from the lock graph; bind both.
			pairs := e.env.BlockPairObjects()
			var next []*Ctx
			for _, ctx := range out {
				for _, p := range pairs {
					objs2 := cloneObjs(ctx.Objects)
					objs2[monitor.ClassBlocker] = p[0]
					objs2[monitor.ClassBlocked] = p[1]
					next = append(next, &Ctx{Objects: objs2, Primary: ctx.Primary})
				}
			}
			out = next
			continue
		default:
			// No live-object enumeration for this class: the reference
			// cannot bind, so the rule evaluates over no combinations.
			return nil
		}
		var next []*Ctx
		for _, ctx := range out {
			for _, cand := range candidates {
				objs2 := cloneObjs(ctx.Objects)
				objs2[class] = cand
				next = append(next, &Ctx{Objects: objs2, Primary: ctx.Primary})
			}
		}
		out = next
	}
	return out
}

func cloneObjs(in map[string]monitor.Object) map[string]monitor.Object {
	out := make(map[string]monitor.Object, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Condition evaluation
// ---------------------------------------------------------------------------

// evalCond compiles and evaluates a rule condition with filter semantics
// (NULL→false). All LAT row references are implicitly ∃-quantified: a
// missing matching row makes the condition false (§5.2). Registered rules
// use the precompiled form via runCond; this helper serves ad-hoc
// evaluation and tests.
func (e *Engine) evalCond(cond sqlparser.Expr, ctx *Ctx) (bool, error) {
	fn, err := compileCond(cond)
	if err != nil {
		return false, err
	}
	if fn == nil {
		return true, nil
	}
	return e.runCond(fn, ctx)
}

// runCond evaluates a compiled condition against a context.
//
//sqlcm:hotpath
func (e *Engine) runCond(fn condFn, ctx *Ctx) (bool, error) {
	st := evalState{eng: e, ctx: ctx}
	v, missing, err := fn(&st)
	if err != nil || missing {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return truthy(v), nil
}

func truthy(v sqltypes.Value) bool {
	switch v.Kind() {
	case sqltypes.KindBool, sqltypes.KindInt:
		return v.Int() != 0
	case sqltypes.KindFloat:
		return v.Float() != 0
	default:
		return false
	}
}

// ParseCondition parses a condition string (reusing the SQL expression
// grammar: Class.Attr and LAT.Column references, arithmetic, comparisons,
// AND/OR/NOT, brackets — exactly the operators of §5.2). Parse failures
// carry the byte offset and the offending token (as a wrapped
// *sqlparser.ParseError), so rulecheck diagnostics can point at the exact
// position in the condition source.
func ParseCondition(src string) (sqlparser.Expr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, nil
	}
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		var pe *sqlparser.ParseError
		if errors.As(err, &pe) {
			tok := pe.Token
			if tok == "" {
				tok = "end of input"
			} else {
				tok = fmt.Sprintf("%q", tok)
			}
			return nil, fmt.Errorf("rules: condition syntax error at offset %d (token %s): %s: %w",
				pe.Offset, tok, pe.Msg, pe)
		}
		return nil, fmt.Errorf("rules: bad condition: %w", err)
	}
	return e, nil
}

// String renders the rule in the paper's Event/Condition/Action form.
func (r *Rule) String() string {
	cond := "TRUE"
	if r.Condition != nil {
		cond = r.Condition.String()
	}
	return fmt.Sprintf("%s: Event: %s Condition: %s Action: %s",
		r.Name, r.Event, cond, describeActions(r.Actions))
}
