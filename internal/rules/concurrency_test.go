package rules

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlcm/internal/monitor"
)

// countAction counts rule firings.
type countAction struct{ n atomic.Int64 }

func (a *countAction) Run(env Env, ctx *Ctx) error { a.n.Add(1); return nil }

func (a *countAction) Describe() string { return "count" }

// TestDispatchTakesNoEngineLock pins the lock-free read path: the hot-path
// entry points must complete while a writer holds the engine's (only)
// mutex, which is impossible if rule lookup acquired it.
func TestDispatchTakesNoEngineLock(t *testing.T) {
	e := NewEngine(newFakeEnv())
	act := &countAction{}
	r := &Rule{Name: "r1", Event: monitor.EvQueryCommit, Actions: []Action{act}}
	if err := e.AddRule(r); err != nil {
		t.Fatal(err)
	}

	e.writeMu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if !e.HasAnyRules() {
			t.Error("HasAnyRules = false")
		}
		if !e.HasRulesFor(monitor.EvQueryCommit) {
			t.Error("HasRulesFor = false")
		}
		if got := e.Rules(); len(got) != 1 {
			t.Errorf("Rules = %v", got)
		}
		if _, ok := e.Rule("r1"); !ok {
			t.Error("Rule lookup failed")
		}
		e.Dispatch(monitor.EvQueryCommit, map[string]monitor.Object{
			monitor.ClassQuery: queryObj(1, "s", 1),
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read path blocked on the engine mutex")
	}
	e.writeMu.Unlock()
	if act.n.Load() != 1 {
		t.Fatalf("rule fired %d times, want 1", act.n.Load())
	}
}

// TestConcurrentAddRemoveDuringDispatch churns the rule set from writer
// goroutines while dispatchers fire events through the copy-on-write
// index (meaningful under -race). A permanent rule must fire on every
// dispatch regardless of concurrent registration activity.
func TestConcurrentAddRemoveDuringDispatch(t *testing.T) {
	e := NewEngine(newFakeEnv())
	permanent := &countAction{}
	if err := e.AddRule(&Rule{Name: "permanent", Event: monitor.EvQueryCommit,
		Actions: []Action{permanent}}); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const dispatchers = 4
	const perG = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("w%d-r%d", w, i)
				r := &Rule{Name: name, Event: monitor.EvQueryCommit, Actions: []Action{&countAction{}}}
				if err := e.AddRule(r); err != nil {
					t.Error(err)
					return
				}
				if !e.RemoveRule(name) {
					t.Errorf("RemoveRule(%q) = false", name)
					return
				}
			}
		}(w)
	}
	var dispatched atomic.Int64
	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e.Dispatch(monitor.EvQueryCommit, map[string]monitor.Object{
					monitor.ClassQuery: queryObj(int64(i), "sig", 1),
				})
				dispatched.Add(1)
			}
		}(d)
	}
	wg.Wait()

	if got := permanent.n.Load(); got != dispatched.Load() {
		t.Errorf("permanent rule fired %d times, want %d", got, dispatched.Load())
	}
	if got := e.Rules(); len(got) != 1 || got[0] != "permanent" {
		t.Errorf("surviving rules = %v", got)
	}
	if !e.HasRulesFor(monitor.EvQueryCommit) {
		t.Error("HasRulesFor lost the permanent rule")
	}
	st := e.Stats()
	if st.Rules != 1 {
		t.Errorf("Stats.Rules = %d", st.Rules)
	}
	// Every dispatch evaluated at least the permanent rule.
	if st.Fired < dispatched.Load() {
		t.Errorf("Fired = %d < dispatches %d", st.Fired, dispatched.Load())
	}
}

// TestRemoveRulePreservesOrder checks that the rebuilt index keeps the
// registration order of the surviving rules (§5: fixed rule order).
func TestRemoveRulePreservesOrder(t *testing.T) {
	e := NewEngine(newFakeEnv())
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("r%d", i)
		if err := e.AddRule(&Rule{Name: name, Event: monitor.EvQueryCommit}); err != nil {
			t.Fatal(err)
		}
		order = append(order, name)
	}
	if !e.RemoveRule("r2") {
		t.Fatal("remove failed")
	}
	want := []string{"r0", "r1", "r3", "r4"}
	got := e.Rules()
	if len(got) != len(want) {
		t.Fatalf("Rules = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rules = %v, want %v", got, want)
		}
	}
	_ = order
}
