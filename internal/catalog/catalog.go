// Package catalog holds the engine's metadata: table schemas, indexes,
// stored procedures and simple table statistics used by the optimizer.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       sqltypes.Kind
	PrimaryKey bool
	NotNull    bool
}

// Table describes a table: its columns and indexes.
type Table struct {
	ID      int64
	Name    string
	Columns []Column
	Indexes []*Index
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// PrimaryKeyColumn returns the position of the primary-key column, or -1.
func (t *Table) PrimaryKeyColumn() int {
	for i, c := range t.Columns {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// IndexByName returns the named index, or nil.
func (t *Table) IndexByName(name string) *Index {
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// Index describes a secondary (or primary) index on a table.
type Index struct {
	Name    string
	Table   string
	Columns []int // column ordinals in the table schema
	Unique  bool
	Primary bool
}

// Procedure is a stored procedure: parameters and a parsed body.
type Procedure struct {
	Name   string
	Params []sqlparser.ProcParam
	Body   []sqlparser.Statement
	Text   string // original CREATE PROCEDURE source
}

// Stats carries per-table statistics for the cost model.
type Stats struct {
	RowCount int64
}

// Catalog is the thread-safe metadata registry.
type Catalog struct {
	// mu protects the table, procedure and stats maps.
	//sqlcm:lock catalog.registry
	//sqlcm:guards tables, procs, stats, nextID
	mu     sync.RWMutex
	tables map[string]*Table
	procs  map[string]*Procedure
	stats  map[string]*Stats
	nextID int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		procs:  make(map[string]*Procedure),
		stats:  make(map[string]*Stats),
		nextID: 1,
	}
}

// CreateTable registers a table. The schema must have at most one primary
// key column; duplicate column names are rejected.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q must have at least one column", name)
	}
	seen := make(map[string]bool, len(cols))
	pk := 0
	for _, col := range cols {
		if seen[col.Name] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[col.Name] = true
		if col.PrimaryKey {
			pk++
		}
	}
	if pk > 1 {
		return nil, fmt.Errorf("catalog: table %q has %d primary key columns", name, pk)
	}
	t := &Table{ID: c.nextID, Name: name, Columns: append([]Column(nil), cols...)}
	c.nextID++
	if i := t.PrimaryKeyColumn(); i >= 0 {
		t.Indexes = append(t.Indexes, &Index{
			Name:    name + "_pk",
			Table:   name,
			Columns: []int{i},
			Unique:  true,
			Primary: true,
		})
	}
	c.tables[name] = t
	c.stats[name] = &Stats{}
	return t, nil
}

// DropTable removes a table and its metadata.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, name)
	delete(c.stats, name)
	return nil
}

// Table returns the named table, or an error.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Tables returns the table names in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateIndex registers a secondary index on an existing table.
func (c *Catalog) CreateIndex(name, table string, columns []string, unique bool) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", table)
	}
	if t.IndexByName(name) != nil {
		return nil, fmt.Errorf("catalog: index %q already exists on %q", name, table)
	}
	ords := make([]int, len(columns))
	for i, col := range columns {
		ord := t.ColumnIndex(col)
		if ord < 0 {
			return nil, fmt.Errorf("catalog: no column %q in table %q", col, table)
		}
		ords[i] = ord
	}
	ix := &Index{Name: name, Table: table, Columns: ords, Unique: unique}
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

// CreateProcedure registers a stored procedure.
func (c *Catalog) CreateProcedure(p *Procedure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.procs[p.Name]; ok {
		return fmt.Errorf("catalog: procedure %q already exists", p.Name)
	}
	c.procs[p.Name] = p
	return nil
}

// Procedure returns the named stored procedure, or an error.
func (c *Catalog) Procedure(name string) (*Procedure, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.procs[name]
	if !ok {
		return nil, fmt.Errorf("catalog: procedure %q does not exist", name)
	}
	return p, nil
}

// Stats returns the statistics for a table (zero stats if unknown).
func (c *Catalog) Stats(table string) Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if s, ok := c.stats[table]; ok {
		return *s
	}
	return Stats{}
}

// AddRows adjusts the row count for a table by delta.
func (c *Catalog) AddRows(table string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.stats[table]; ok {
		s.RowCount += delta
		if s.RowCount < 0 {
			s.RowCount = 0
		}
	}
}
