package catalog

import (
	"testing"

	"sqlcm/internal/sqltypes"
)

func testCols() []Column {
	return []Column{
		{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true, NotNull: true},
		{Name: "name", Type: sqltypes.KindString},
		{Name: "price", Type: sqltypes.KindFloat},
	}
}

func TestCreateTableAndLookup(t *testing.T) {
	c := New()
	tbl, err := c.CreateTable("t", testCols())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID == 0 {
		t.Error("table id should be assigned")
	}
	got, err := c.Table("t")
	if err != nil || got != tbl {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if tbl.ColumnIndex("price") != 2 || tbl.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if tbl.PrimaryKeyColumn() != 0 {
		t.Error("PrimaryKeyColumn wrong")
	}
	// Primary key auto-creates a unique index.
	if len(tbl.Indexes) != 1 || !tbl.Indexes[0].Primary || !tbl.Indexes[0].Unique {
		t.Fatalf("pk index: %+v", tbl.Indexes)
	}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", nil); err == nil {
		t.Error("empty columns should fail")
	}
	if _, err := c.CreateTable("t", []Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate columns should fail")
	}
	if _, err := c.CreateTable("t", []Column{{Name: "a", PrimaryKey: true}, {Name: "b", PrimaryKey: true}}); err == nil {
		t.Error("two PKs should fail")
	}
	if _, err := c.CreateTable("t", testCols()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", testCols()); err == nil {
		t.Error("duplicate table should fail")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", testCols()); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("t"); err == nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCreateIndex(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", testCols()); err != nil {
		t.Fatal(err)
	}
	ix, err := c.CreateIndex("by_name", "t", []string{"name", "price"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Columns) != 2 || ix.Columns[0] != 1 || ix.Columns[1] != 2 {
		t.Fatalf("ordinals: %+v", ix.Columns)
	}
	tbl, _ := c.Table("t")
	if tbl.IndexByName("by_name") != ix {
		t.Error("IndexByName lookup failed")
	}
	if _, err := c.CreateIndex("by_name", "t", []string{"name"}, false); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := c.CreateIndex("x", "t", []string{"nope"}, false); err == nil {
		t.Error("bad column should fail")
	}
	if _, err := c.CreateIndex("x", "missing", []string{"a"}, false); err == nil {
		t.Error("bad table should fail")
	}
}

func TestProcedures(t *testing.T) {
	c := New()
	p := &Procedure{Name: "p"}
	if err := c.CreateProcedure(p); err != nil {
		t.Fatal(err)
	}
	got, err := c.Procedure("p")
	if err != nil || got != p {
		t.Fatal("lookup failed")
	}
	if err := c.CreateProcedure(p); err == nil {
		t.Error("duplicate proc should fail")
	}
	if _, err := c.Procedure("q"); err == nil {
		t.Error("missing proc should fail")
	}
}

func TestStats(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", testCols()); err != nil {
		t.Fatal(err)
	}
	c.AddRows("t", 10)
	c.AddRows("t", -3)
	if got := c.Stats("t").RowCount; got != 7 {
		t.Errorf("RowCount = %d", got)
	}
	c.AddRows("t", -100)
	if got := c.Stats("t").RowCount; got != 0 {
		t.Errorf("RowCount clamps at 0, got %d", got)
	}
	if got := c.Stats("missing").RowCount; got != 0 {
		t.Errorf("missing table stats = %d", got)
	}
}

func TestTablesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(n, testCols()); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Tables()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tables() = %v", got)
		}
	}
}
