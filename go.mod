module sqlcm

go 1.22
