package sqlcm

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPublicAPIQuickstart(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)", nil); err != nil {
		t.Fatal(err)
	}
	sess := db.Session("alice", "quickstart")
	for i := 1; i <= 10; i++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d.5)", i, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Exec("SELECT COUNT(*), AVG(v) FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("count: %v", res.Rows[0][0])
	}
}

func TestPublicAPIMonitoringFlow(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLAT(LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []AggCol{
			{Func: Count, Name: "N"},
			{Func: Avg, Attr: "Duration", Name: "AvgD"},
			{Func: First, Attr: "Query_Text", Name: "Sample"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewRule("collect", "Query.Commit", "", &InsertAction{LAT: "ByTemplate"}); err != nil {
		t.Fatal(err)
	}
	sess := db.Session("bob", "app")
	for i := 1; i <= 20; i++ {
		if _, err := sess.Exec("INSERT INTO t VALUES (@i, @v)", map[string]Value{
			"i": NewInt(int64(i)), "v": NewFloat(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		if _, err := sess.Exec(fmt.Sprintf("SELECT v FROM t WHERE id = %d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	lt, ok := db.LAT("ByTemplate")
	if !ok {
		t.Fatal("LAT missing")
	}
	if lt.Len() != 2 { // insert template + select template
		t.Fatalf("templates: %d", lt.Len())
	}
	if err := db.PersistLAT("ByTemplate", "template_report"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.ReadTable("template_report")
	if err != nil || len(rows) != 2 {
		t.Fatalf("report: %d rows %v", len(rows), err)
	}
	if !db.RemoveRule("collect") {
		t.Fatal("remove rule")
	}
	if !db.DropLAT("ByTemplate") {
		t.Fatal("drop LAT")
	}
}

func TestPublicAPITimerAndMail(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewRule("heartbeat", "Timer.Alarm", "",
		&SendMailAction{Address: "ops@example.com", Text: "tick {Name} #{Alarm_Count}"},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.SetTimer("hb", 20*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	mm := db.Monitor().Mailer().(*MemMailer)
	sent := mm.Sent()
	if len(sent) != 2 {
		t.Fatalf("mails: %d", len(sent))
	}
	if !strings.Contains(sent[0].Body, "tick hb #1") {
		t.Fatalf("body: %q", sent[0].Body)
	}
}
