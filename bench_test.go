package sqlcm

// Benchmarks regenerating the paper's evaluation artifacts, one family per
// table/figure (see DESIGN.md §3 for the experiment index):
//
//	E-SIG   BenchmarkSignature*          — §6.2.1 signature-computation cost
//	E-FIG2  BenchmarkRuleOverhead*       — Figure 2: per-query cost vs. rule
//	                                       count × condition complexity
//	E-FIG3  BenchmarkMonitoring*         — Figure 3: per-query cost of each
//	                                       monitoring approach
//	A-LAT   BenchmarkLATConcurrent*      — §6.1 LAT latching under stress
//	A-AGE   BenchmarkAgingAggregates     — §4.3 aging vs. plain aggregates
//	A-EVICT BenchmarkLATEviction*        — §4.3 bounded vs. unbounded LATs
//
// The full paper-shaped sweeps (absolute overhead percentages, accuracy
// counts) are produced by cmd/sqlcm-bench; these testing.B benchmarks give
// the per-operation costs behind them.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sqlcm/internal/baseline"
	"sqlcm/internal/core"
	"sqlcm/internal/engine"
	"sqlcm/internal/event"
	"sqlcm/internal/harness"
	"sqlcm/internal/lat"
	"sqlcm/internal/monitor"
	"sqlcm/internal/plan"
	"sqlcm/internal/rules"
	"sqlcm/internal/signature"
	"sqlcm/internal/sqlparser"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/workload"
)

// benchEngine opens an engine with a small TPC-H-style database.
func benchEngine(b *testing.B, lineitems int) *engine.Engine {
	b.Helper()
	eng, err := engine.Open(engine.Config{PoolPages: 2048})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	if _, err := workload.Setup(eng, workload.Config{
		Lineitems: lineitems, ShortQueries: 1, JoinQueries: 1, Seed: 1,
	}); err != nil {
		b.Fatal(err)
	}
	return eng
}

// ---------------------------------------------------------------------------
// E-SIG (§6.2.1): signature computation vs. optimization
// ---------------------------------------------------------------------------

func sigBenchPlans(b *testing.B, eng *engine.Engine, sql string) (plan.Logical, plan.Physical) {
	b.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	l, err := plan.BuildLogical(stmt, eng.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(l, eng.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	return l, p
}

const sigSimpleSQL = "SELECT l_quantity FROM lineitem WHERE l_id = 42"

const sigComplexSQL = `SELECT o.o_status, COUNT(*), SUM(l.l_extendedprice)
	FROM lineitem l
	JOIN orders o ON l.l_orderkey = o.o_orderkey
	JOIN part p ON l.l_partkey = p.p_partkey
	WHERE l.l_quantity > 10 AND o.o_totalprice > 1000
	GROUP BY o.o_status ORDER BY COUNT(*) DESC LIMIT 10`

func BenchmarkSignatureSimpleQuery(b *testing.B) {
	eng := benchEngine(b, 1000)
	l, p := sigBenchPlans(b, eng, sigSimpleSQL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signature.Logical(l)
		signature.Physical(p)
	}
}

func BenchmarkSignatureComplexQuery(b *testing.B) {
	eng := benchEngine(b, 1000)
	l, p := sigBenchPlans(b, eng, sigComplexSQL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signature.Logical(l)
		signature.Physical(p)
	}
}

// BenchmarkOptimizeSimpleQuery/Complex give the denominators of the
// paper's ratio.
func BenchmarkOptimizeSimpleQuery(b *testing.B) {
	eng := benchEngine(b, 1000)
	stmt, _ := sqlparser.Parse(sigSimpleSQL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, _ := plan.BuildLogical(stmt, eng.Catalog())
		if _, err := plan.Optimize(l, eng.Catalog()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeComplexQuery(b *testing.B) {
	eng := benchEngine(b, 1000)
	stmt, _ := sqlparser.Parse(sigComplexSQL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, _ := plan.BuildLogical(stmt, eng.Catalog())
		if _, err := plan.Optimize(l, eng.Catalog()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E-FIG2 (Figure 2): per-query cost under rule load
// ---------------------------------------------------------------------------

// benchFig2 measures the per-query cost of a single-row select with
// nRules × nConds monitoring attached (0 rules = the engine baseline).
func benchFig2(b *testing.B, nRules, nConds int) {
	eng := benchEngine(b, 5000)
	if nRules > 0 {
		s := core.Attach(eng, core.Options{})
		b.Cleanup(func() { s.Detach() })
		for i := 0; i < nRules; i++ {
			spec := lat.Spec{
				Name:    fmt.Sprintf("b_lat_%04d", i),
				GroupBy: []string{"ID"},
				Aggs: []lat.AggCol{
					{Func: lat.Last, Attr: "Query_Text", Name: "Text"},
					{Func: lat.Last, Attr: "Duration", Name: "Dur"},
				},
				OrderBy: []lat.OrderKey{{Col: "ID", Desc: true}},
				MaxRows: 10,
			}
			if _, err := s.DefineLAT(spec); err != nil {
				b.Fatal(err)
			}
			cond := "Query.Duration >= 0"
			for c := 1; c < nConds; c++ {
				cond += " AND Query.ID > 0"
			}
			if _, err := s.NewRule(fmt.Sprintf("r%04d", i), "Query.Commit", cond,
				&rules.InsertAction{LAT: spec.Name}); err != nil {
				b.Fatal(err)
			}
		}
	}
	sess := eng.NewSession("bench", "fig2")
	params := map[string]sqltypes.Value{"key": sqltypes.NewInt(1)}
	if _, err := sess.Exec("SELECT l_quantity FROM lineitem WHERE l_id = @key", params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params["key"] = sqltypes.NewInt(int64(i%5000 + 1))
		if _, err := sess.Exec("SELECT l_quantity FROM lineitem WHERE l_id = @key", params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleOverheadNoRules(b *testing.B)          { benchFig2(b, 0, 0) }
func BenchmarkRuleOverhead100Rules1Cond(b *testing.B)    { benchFig2(b, 100, 1) }
func BenchmarkRuleOverhead100Rules20Conds(b *testing.B)  { benchFig2(b, 100, 20) }
func BenchmarkRuleOverhead1000Rules1Cond(b *testing.B)   { benchFig2(b, 1000, 1) }
func BenchmarkRuleOverhead1000Rules20Conds(b *testing.B) { benchFig2(b, 1000, 20) }

// ---------------------------------------------------------------------------
// E-FIG3 (Figure 3): per-query cost of each monitoring approach
// ---------------------------------------------------------------------------

func benchPointSelects(b *testing.B, eng *engine.Engine) {
	sess := eng.NewSession("bench", "fig3")
	params := map[string]sqltypes.Value{"key": sqltypes.NewInt(1)}
	if _, err := sess.Exec("SELECT l_quantity FROM lineitem WHERE l_id = @key", params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params["key"] = sqltypes.NewInt(int64(i%5000 + 1))
		if _, err := sess.Exec("SELECT l_quantity FROM lineitem WHERE l_id = @key", params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitoringNone(b *testing.B) {
	eng := benchEngine(b, 5000)
	benchPointSelects(b, eng)
}

func BenchmarkMonitoringSQLCMTopK(b *testing.B) {
	eng := benchEngine(b, 5000)
	s := core.Attach(eng, core.Options{})
	b.Cleanup(func() { s.Detach() })
	if _, err := s.DefineLAT(lat.Spec{
		Name:    "TopQ",
		GroupBy: []string{"Query_Text"},
		Aggs:    []lat.AggCol{{Func: lat.Max, Attr: "Duration", Name: "Duration"}},
		OrderBy: []lat.OrderKey{{Col: "Duration", Desc: true}},
		MaxRows: 10,
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := s.NewRule("topq", "Query.Commit", "", &rules.InsertAction{LAT: "TopQ"}); err != nil {
		b.Fatal(err)
	}
	benchPointSelects(b, eng)
}

func BenchmarkMonitoringQueryLogging(b *testing.B) {
	eng := benchEngine(b, 5000)
	logger, err := baseline.NewQueryLogger(eng, "query_log")
	if err != nil {
		b.Fatal(err)
	}
	eng.SetHooks(logger)
	b.Cleanup(func() { eng.SetHooks(nil) })
	benchPointSelects(b, eng)
}

func BenchmarkMonitoringPullHistory(b *testing.B) {
	eng := benchEngine(b, 5000)
	rec := baseline.NewHistoryRecorder(eng)
	eng.SetHooks(rec)
	hp := baseline.NewHistoryPoller(rec, 10*time.Millisecond)
	hp.Start()
	b.Cleanup(func() {
		hp.Stop()
		eng.SetHooks(nil)
		rec.Drain()
	})
	benchPointSelects(b, eng)
}

// ---------------------------------------------------------------------------
// A-LAT (§6.1): LAT latching under concurrent insert stress
// ---------------------------------------------------------------------------

func benchLATConcurrent(b *testing.B, goroutines int) {
	table, err := lat.New(lat.Spec{
		Name:    "conc",
		GroupBy: []string{"Sig"},
		Aggs: []lat.AggCol{
			{Func: lat.Count, Name: "N"},
			{Func: lat.Avg, Attr: "Dur", Name: "AvgD"},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.SetParallelism(goroutines)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			sig := sqltypes.NewInt(int64(i % 64))
			dur := sqltypes.NewFloat(float64(i % 100))
			table.Insert(func(attr string) (sqltypes.Value, bool) { //nolint:errcheck
				switch attr {
				case "Sig":
					return sig, true
				case "Dur":
					return dur, true
				}
				return sqltypes.Null, false
			})
		}
	})
}

func BenchmarkLATConcurrent1(b *testing.B) { benchLATConcurrent(b, 1) }
func BenchmarkLATConcurrent4(b *testing.B) { benchLATConcurrent(b, 4) }
func BenchmarkLATConcurrent8(b *testing.B) { benchLATConcurrent(b, 8) }

// ---------------------------------------------------------------------------
// A-AGE (§4.3): aging vs. plain aggregates
// ---------------------------------------------------------------------------

func benchLATInsert(b *testing.B, aging bool) {
	spec := lat.Spec{
		Name:    "age",
		GroupBy: []string{"Sig"},
		Aggs: []lat.AggCol{
			{Func: lat.Avg, Attr: "Dur", Name: "AvgD", Aging: aging},
			{Func: lat.Count, Attr: "Dur", Name: "N", Aging: aging},
		},
	}
	if aging {
		spec.AgingWindow = time.Minute
		spec.AgingBlock = time.Second
	}
	table, err := lat.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := sqltypes.NewInt(int64(i % 100))
		dur := sqltypes.NewFloat(float64(i))
		table.Insert(func(attr string) (sqltypes.Value, bool) { //nolint:errcheck
			switch attr {
			case "Sig":
				return sig, true
			case "Dur":
				return dur, true
			}
			return sqltypes.Null, false
		})
	}
}

func BenchmarkPlainAggregates(b *testing.B) { benchLATInsert(b, false) }
func BenchmarkAgingAggregates(b *testing.B) { benchLATInsert(b, true) }

// ---------------------------------------------------------------------------
// A-EVICT (§4.3): insert cost at capacity (heap eviction) vs. unbounded
// ---------------------------------------------------------------------------

func benchLATEviction(b *testing.B, maxRows int) {
	spec := lat.Spec{
		Name:    "evict",
		GroupBy: []string{"ID"},
		Aggs:    []lat.AggCol{{Func: lat.Max, Attr: "Dur", Name: "Dur"}},
	}
	if maxRows > 0 {
		spec.OrderBy = []lat.OrderKey{{Col: "Dur", Desc: true}}
		spec.MaxRows = maxRows
	}
	table, err := lat.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := sqltypes.NewInt(int64(i))
		dur := sqltypes.NewFloat(float64(i % 1000))
		table.Insert(func(attr string) (sqltypes.Value, bool) { //nolint:errcheck
			switch attr {
			case "ID":
				return id, true
			case "Dur":
				return dur, true
			}
			return sqltypes.Null, false
		})
	}
}

func BenchmarkLATEvictionBounded100(b *testing.B) { benchLATEviction(b, 100) }
func BenchmarkLATEvictionUnbounded(b *testing.B)  { benchLATEviction(b, 0) }

// ---------------------------------------------------------------------------
// End-to-end harness smoke benchmarks (tiny scale; the full sweeps live in
// cmd/sqlcm-bench)
// ---------------------------------------------------------------------------

func BenchmarkHarnessSignatureTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunSignatureOverhead(100); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// A-PAR: hot-path scaling benchmarks. Each exercises one sharded/lock-free
// structure from b.RunParallel so throughput can be compared across
// -cpu values; on >= 4 cores the sharded paths should scale near-linearly
// where the seed's single-mutex versions flatlined.
// ---------------------------------------------------------------------------

// nullEnv is a rules.Env that does nothing: dispatch benchmarks measure
// index lookup + condition evaluation, not action side effects.
type nullEnv struct{}

func (nullEnv) LAT(string) (*lat.Table, bool) { return nil, false }
func (nullEnv) Persist(string, []string, []sqltypes.Kind, []sqltypes.Value) error {
	return nil
}
func (nullEnv) SendMail(string, string) error             { return nil }
func (nullEnv) RunExternal(string) error                  { return nil }
func (nullEnv) CancelQuery(int64) bool                    { return false }
func (nullEnv) SetTimer(string, time.Duration, int) error { return nil }
func (nullEnv) ActiveQueryObjects() []monitor.Object      { return nil }
func (nullEnv) BlockPairObjects() [][2]monitor.Object     { return nil }

// nopAction fires without side effects.
type nopAction struct{}

func (nopAction) Run(rules.Env, *rules.Ctx) error { return nil }
func (nopAction) Describe() string                { return "nop" }

// BenchmarkEventDispatchParallel pushes Query.Commit events through the
// event bus into the rule engine's copy-on-write index from all procs.
// The read side takes zero locks, so this should scale with cores.
func BenchmarkEventDispatchParallel(b *testing.B) {
	e := rules.NewEngine(nullEnv{})
	cond, err := rules.ParseCondition("Query.Duration >= 0")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := e.AddRule(&rules.Rule{
			Name:      fmt.Sprintf("r%02d", i),
			Event:     monitor.EvQueryCommit,
			Condition: cond,
			Actions:   []rules.Action{nopAction{}},
		}); err != nil {
			b.Fatal(err)
		}
	}
	bus := event.NewBus(e)
	qi := &engine.QueryInfo{ID: 1, User: "bench", App: "bench", Text: "SELECT 1"}
	obj := monitor.NewQueryObject(qi, &monitor.Sigs{})
	obj.DurationAt = time.Millisecond
	objs := map[string]monitor.Object{monitor.ClassQuery: obj}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bus.Dispatch(monitor.EvQueryCommit, objs)
		}
	})
	if bus.Total() != int64(b.N) {
		b.Fatalf("bus counted %d events, want %d", bus.Total(), b.N)
	}
}

// benchLATObserveParallel inserts into an unbounded striped LAT from all
// procs. hot=false gives every goroutine its own key range (different
// stripes, near-zero latch contention); hot=true forces every insert onto
// one group so all procs fight over a single row latch.
func benchLATObserveParallel(b *testing.B, hot bool) {
	table, err := lat.New(lat.Spec{
		Name:    "par",
		GroupBy: []string{"Sig"},
		Aggs: []lat.AggCol{
			{Func: lat.Count, Name: "N"},
			{Func: lat.Avg, Attr: "Dur", Name: "AvgD"},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	var nextRange atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := nextRange.Add(1) << 8
		i := 0
		for pb.Next() {
			i++
			key := int64(0) // hot: all procs hammer one group
			if !hot {
				key = base + int64(i%256) // distinct per-goroutine key range
			}
			sig := sqltypes.NewInt(key)
			dur := sqltypes.NewFloat(float64(i % 100))
			table.Insert(func(attr string) (sqltypes.Value, bool) { //nolint:errcheck
				switch attr {
				case "Sig":
					return sig, true
				case "Dur":
					return dur, true
				}
				return sqltypes.Null, false
			})
		}
	})
}

func BenchmarkLATObserveParallel(b *testing.B) {
	b.Run("DistinctKeys", func(b *testing.B) { benchLATObserveParallel(b, false) })
	b.Run("HotKey", func(b *testing.B) { benchLATObserveParallel(b, true) })
}

// BenchmarkSigCacheParallel hits the sharded signature cache from all
// procs over a working set of pre-optimized plans (all hits after the
// first round; the interesting number is lookup throughput).
func BenchmarkSigCacheParallel(b *testing.B) {
	eng := benchEngine(b, 200)
	const plans = 32
	infos := make([]*engine.QueryInfo, plans)
	for i := range infos {
		sql := fmt.Sprintf("SELECT l_quantity FROM lineitem WHERE l_id = %d", i+1)
		l, p := sigBenchPlans(b, eng, sql)
		infos[i] = &engine.QueryInfo{Logical: l, Physical: p}
	}
	c := monitor.NewSigCache()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			c.For(infos[i%plans])
		}
	})
	// Every plan is computed at most once no matter how many procs raced.
	if n := c.Computes(); n > plans {
		b.Fatalf("Computes = %d, want <= %d", n, plans)
	}
}
