// Command sqlcm-serve runs the monitored engine behind the network
// front-end (internal/server): a TCP server speaking the PostgreSQL-v3-
// style wire protocol, one engine session per connection, with the
// monitoring framework attached inside the engine.
//
// Usage:
//
//	sqlcm-serve -addr :5477                        # serve, monitoring on
//	sqlcm-serve -addr :5477 -monitor=false         # monitoring suspended
//	sqlcm-serve -rules examples/rulesets/quickstart.rules
//	sqlcm-serve -lineitems 10000                   # preload workload schema
//
// SIGINT/SIGTERM triggers a graceful shutdown: stop accepting, let
// in-flight statements finish under -drain-timeout, then drain the
// monitoring action outbox before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sqlcm"
	"sqlcm/internal/server"
	"sqlcm/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5477", "TCP listen address")
	maxConns := flag.Int("max-conns", 2000, "maximum concurrent connections")
	monitor := flag.Bool("monitor", true, "enable continuous monitoring (false suspends all probes)")
	rulesFile := flag.String("rules", "", "load a .rules rule set at startup")
	password := flag.String("password", "", "require cleartext-password auth with this password")
	lineitems := flag.Int("lineitems", 0, "preload the workload schema with this many lineitem rows (0 = none)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "per-connection idle/read timeout")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget")
	flag.Parse()

	if err := run(*addr, *maxConns, *monitor, *rulesFile, *password, *lineitems, *readTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sqlcm-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, maxConns int, monitor bool, rulesFile, password string, lineitems int, readTimeout, drainTimeout time.Duration) error {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return err
	}
	defer db.Close() //nolint:errcheck

	if rulesFile != "" {
		src, err := os.ReadFile(rulesFile)
		if err != nil {
			return err
		}
		if err := db.LoadRuleSet(string(src)); err != nil {
			return fmt.Errorf("rules %s: %w", rulesFile, err)
		}
		fmt.Printf("loaded rule set %s\n", rulesFile)
	}
	if !monitor {
		db.Monitor().Suspend()
		fmt.Println("monitoring suspended")
	}
	if lineitems > 0 {
		start := time.Now()
		cfg, err := workload.Setup(db.Engine(), workload.Config{Lineitems: lineitems})
		if err != nil {
			return fmt.Errorf("workload setup: %w", err)
		}
		fmt.Printf("workload schema loaded: %d lineitem, %d orders, %d part rows in %v\n",
			cfg.Lineitems, cfg.Orders, cfg.Parts, time.Since(start).Round(time.Millisecond))
	}

	srv, err := server.New(server.Config{
		Addr:         addr,
		MaxConns:     maxConns,
		ReadTimeout:  readTimeout,
		DrainTimeout: drainTimeout,
		Password:     password,
		NewSession:   db.RemoteSession,
		Drain:        db.Flush,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("listening on %s (max %d connections, monitoring=%v)\n", srv.Addr(), maxConns, monitor)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := srv.Shutdown(drainTimeout); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("served %d connections, %d statements (%d errors)\n", st.Accepted, st.Statements, st.Errors)
	return nil
}
