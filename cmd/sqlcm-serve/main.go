// Command sqlcm-serve runs the monitored engine behind the network
// front-end (internal/server): a TCP server speaking the PostgreSQL-v3-
// style wire protocol, one engine session per connection, with the
// monitoring framework attached inside the engine.
//
// Usage:
//
//	sqlcm-serve -addr :5477                        # serve, monitoring on
//	sqlcm-serve -addr :5477 -monitor=false         # monitoring suspended
//	sqlcm-serve -rules examples/rulesets/quickstart.rules
//	sqlcm-serve -lineitems 10000                   # preload workload schema
//	sqlcm-serve -stmt-timeout 5s -shed             # statement deadlines + overload shedding
//	sqlcm-serve -chaos-fraction 0.3 -chaos-seed 7  # self-inflicted network faults
//
// SIGINT/SIGTERM triggers a graceful shutdown: stop accepting, let
// in-flight statements finish under -drain-timeout (statements that
// outlive the graceful window are cancelled with reason drain), then
// drain the monitoring action outbox before exiting.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sqlcm"
	"sqlcm/internal/faults/netfaults"
	"sqlcm/internal/server"
	"sqlcm/internal/workload"
)

// options carries the parsed flag set into run.
type options struct {
	addr          string
	maxConns      int
	monitor       bool
	rulesFile     string
	password      string
	lineitems     int
	readTimeout   time.Duration
	writeTimeout  time.Duration
	drainTimeout  time.Duration
	admissionWait time.Duration
	stmtTimeout   time.Duration
	shed          bool
	chaosFraction float64
	chaosSeed     int64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:5477", "TCP listen address")
	flag.IntVar(&o.maxConns, "max-conns", 2000, "maximum concurrent connections")
	flag.BoolVar(&o.monitor, "monitor", true, "enable continuous monitoring (false suspends all probes)")
	flag.StringVar(&o.rulesFile, "rules", "", "load a .rules rule set at startup")
	flag.StringVar(&o.password, "password", "", "require cleartext-password auth with this password")
	flag.IntVar(&o.lineitems, "lineitems", 0, "preload the workload schema with this many lineitem rows (0 = none)")
	flag.DurationVar(&o.readTimeout, "read-timeout", 5*time.Minute, "per-connection idle/read timeout")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 30*time.Second, "per-response write timeout")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "graceful-shutdown budget")
	flag.DurationVar(&o.admissionWait, "admission-wait", 0, "how long a connection may wait for a MaxConns slot before the polite refusal (0 = refuse immediately)")
	flag.DurationVar(&o.stmtTimeout, "stmt-timeout", 0, "per-statement deadline; exceeding it cancels the statement with a retryable 57014 (0 = off)")
	flag.BoolVar(&o.shed, "shed", false, "refuse statements with a retryable 53400 while the monitor's dispatch budget reports overload")
	flag.Float64Var(&o.chaosFraction, "chaos-fraction", 0, "afflict this fraction of accepted connections with network faults (0 = off; testing only)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the chaos affliction schedule")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "sqlcm-serve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return err
	}
	defer db.Close() //nolint:errcheck

	if o.rulesFile != "" {
		src, err := os.ReadFile(o.rulesFile)
		if err != nil {
			return err
		}
		if err := db.LoadRuleSet(string(src)); err != nil {
			return fmt.Errorf("rules %s: %w", o.rulesFile, err)
		}
		fmt.Printf("loaded rule set %s\n", o.rulesFile)
	}
	if !o.monitor {
		db.Monitor().Suspend()
		fmt.Println("monitoring suspended")
	}
	if o.lineitems > 0 {
		start := time.Now()
		cfg, err := workload.Setup(db.Engine(), workload.Config{Lineitems: o.lineitems})
		if err != nil {
			return fmt.Errorf("workload setup: %w", err)
		}
		fmt.Printf("workload schema loaded: %d lineitem, %d orders, %d part rows in %v\n",
			cfg.Lineitems, cfg.Orders, cfg.Parts, time.Since(start).Round(time.Millisecond))
	}

	cfg := server.Config{
		Addr:             o.addr,
		MaxConns:         o.maxConns,
		ReadTimeout:      o.readTimeout,
		WriteTimeout:     o.writeTimeout,
		DrainTimeout:     o.drainTimeout,
		AdmissionWait:    o.admissionWait,
		StatementTimeout: o.stmtTimeout,
		Password:         o.password,
		NewSession:       db.RemoteSession,
		Drain:            db.Flush,
	}
	if o.shed {
		cfg.Overloaded = db.Monitor().Bus().Degraded
		fmt.Println("overload shedding armed (monitor dispatch-budget state)")
	}
	if o.chaosFraction > 0 {
		// Self-inflicted chaos: bind the address ourselves and serve the
		// fault-injecting wrapper instead.
		lis, err := net.Listen("tcp", o.addr)
		if err != nil {
			return err
		}
		cfg.Listener = netfaults.Wrap(lis, netfaults.Config{
			Seed:     o.chaosSeed,
			Fraction: o.chaosFraction,
		})
		fmt.Printf("network chaos armed: fraction=%.2f seed=%d\n", o.chaosFraction, o.chaosSeed)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("listening on %s (max %d connections, monitoring=%v)\n", srv.Addr(), o.maxConns, o.monitor)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := srv.Shutdown(o.drainTimeout); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("served %d connections, %d statements (%d errors, %d shed, %d cancelled)\n",
		st.Accepted, st.Statements, st.Errors, st.Shed, st.Cancelled)
	return nil
}
