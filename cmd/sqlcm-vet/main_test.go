package main

import (
	"os"
	"strings"
	"testing"
)

// The seeded-defect fixtures must make sqlcm-vet fail, with every
// analysis represented in the output.
func TestVetDetectsSeededDefects(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"../../internal/rulecheck/testdata"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	for _, analysis := range []string{"[type]", "[sat]", "[latref]", "[trigger]", "[shadow]"} {
		if !strings.Contains(out.String(), analysis) {
			t.Errorf("output missing %s finding:\n%s", analysis, out.String())
		}
	}
}

// The shipped example rule sets must pass even in strict mode, with no
// output at all.
func TestVetExamplesCleanStrict(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-mode", "strict", "../../examples/rulesets"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if out.Len() > 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// The repo's own source must satisfy the hot-path and recover-discipline
// analyzers.
func TestVetCodeClean(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-code", "../.."}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// -analyzers lists every registered -code analyzer plus the lock
// checker, one per line, and exits 0.
func TestVetAnalyzersList(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-analyzers"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errw.String())
	}
	for _, name := range []string{"hotpath", "recovered", "ctxprop", "cancelpoint", "goownership", "errcode", "lockcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("analyzer list missing %s:\n%s", name, out.String())
		}
	}
}

// Warnings alone pass in warn mode and fail in strict mode.
func TestVetModeStrictFailsOnWarnings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/warn.rules", `
rule always on Query.Commit {
    when 1 = 1
    sendmail "dba@example.com" "x"
}
`)
	var out, errw strings.Builder
	if code := run([]string{dir}, &out, &errw); code != 0 {
		t.Fatalf("warn mode exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "always true") {
		t.Errorf("expected always-true warning, got:\n%s", out.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-mode", "strict", dir}, &out, &errw); code != 1 {
		t.Fatalf("strict mode exit = %d, want 1\n%s%s", code, out.String(), errw.String())
	}
}

func TestVetBadUsage(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-mode", "bogus", "x.rules"}, &out, &errw); code != 2 {
		t.Errorf("bad mode exit = %d, want 2", code)
	}
	if code := run(nil, &out, &errw); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
