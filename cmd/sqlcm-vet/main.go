// Command sqlcm-vet statically analyzes SQLCM rule sets and, with -code,
// the monitoring engine's own Go source.
//
// Usage:
//
//	sqlcm-vet [-mode strict|warn] file.rules [dir ...]
//	sqlcm-vet -code [dir ...]
//
// In rules mode each argument is a .rules file or a directory searched
// recursively for .rules files. Every file is parsed and the whole set is
// checked: condition type errors against the monitored-class schemas,
// unsatisfiable (dead) and always-true conditions, dangling LAT
// references, trigger cycles and excessive trigger nesting, and
// duplicate/shadowed rules.
//
// In -code mode each argument is a directory tree whose Go packages are
// run through SQLCM's custom source analyzers (hot-path hygiene and the
// recover discipline for rule callbacks); see internal/analysis.
//
// Exit status is 1 if any error-severity finding (or unreadable input)
// was reported; -mode strict also fails on warnings.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"sqlcm/internal/analysis"
	"sqlcm/internal/rulecheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sqlcm-vet", flag.ContinueOnError)
	fs.SetOutput(errw)
	mode := fs.String("mode", "warn", "strict|warn: strict also fails on warnings")
	code := fs.Bool("code", false, "analyze Go source trees instead of .rules files")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: sqlcm-vet [-mode strict|warn] file.rules [dir ...]\n")
		fmt.Fprintf(errw, "       sqlcm-vet -code [dir ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *mode != "strict" && *mode != "warn" {
		fmt.Fprintf(errw, "sqlcm-vet: unknown -mode %q (want strict or warn)\n", *mode)
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		if *code {
			paths = []string{"."}
		} else {
			fs.Usage()
			return 2
		}
	}

	var errs, warns int
	if *code {
		errs = runCode(paths, out, errw)
	} else {
		errs, warns = runRules(paths, out, errw)
	}

	if errs > 0 || (*mode == "strict" && warns > 0) {
		return 1
	}
	return 0
}

// runCode analyzes Go source trees. Every finding from the source
// analyzers is a hard error: the annotations are opt-in, so a finding
// means annotated code regressed.
func runCode(roots []string, out, errw io.Writer) (errs int) {
	for _, root := range roots {
		diags, err := analysis.RunTree(root)
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			errs++
			continue
		}
		for _, d := range diags {
			fmt.Fprintln(out, d)
			errs++
		}
	}
	return errs
}

// runRules checks every .rules file reachable from the arguments.
func runRules(paths []string, out, errw io.Writer) (errs, warns int) {
	for _, path := range expandRules(paths, errw, &errs) {
		e, w := checkRulesFile(path, out, errw)
		errs += e
		warns += w
	}
	return errs, warns
}

// expandRules resolves arguments to .rules files, walking directories.
func expandRules(paths []string, errw io.Writer, errs *int) []string {
	var files []string
	for _, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			*errs++
			continue
		}
		if !info.IsDir() {
			files = append(files, path)
			continue
		}
		err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".rules") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			*errs++
		}
	}
	return files
}

func checkRulesFile(path string, out, errw io.Writer) (errs, warns int) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
		return 1, 0
	}
	set, diags, err := rulecheck.ParseSet(string(src))
	if err != nil {
		fmt.Fprintf(out, "%s: %v\n", path, err)
		return 1, 0
	}
	diags = append(diags, rulecheck.Check(set)...)
	for _, d := range diags {
		fmt.Fprintf(out, "%s: %s\n", path, d)
		if d.Severity == rulecheck.Error {
			errs++
		} else {
			warns++
		}
	}
	return errs, warns
}
