// Command sqlcm-vet statically analyzes SQLCM rule sets and, with -code,
// the monitoring engine's own Go source.
//
// Usage:
//
//	sqlcm-vet [-mode strict|warn] file.rules [dir ...]
//	sqlcm-vet -code [dir ...]
//	sqlcm-vet -lockdoc [-write] [dir]
//	sqlcm-vet -analyzers
//
// In rules mode each argument is a .rules file or a directory searched
// recursively for .rules files. Every file is parsed and the whole set is
// checked: condition type errors against the monitored-class schemas,
// unsatisfiable (dead) and always-true conditions, dangling LAT
// references, trigger cycles and excessive trigger nesting, and
// duplicate/shadowed rules.
//
// In -code mode each argument is a directory tree whose Go packages are
// loaded, type-checked (offline, against GOROOT source) and run through
// SQLCM's custom source analyzers — hot-path hygiene, the recover
// discipline for rule callbacks, context propagation, cancellation-point
// proofs for //sqlcm:cancellable loops, goroutine ownership, the
// SQLSTATE single-source check, and the data-protection suite
// (//sqlcm:guards/guarded-by field access under the declared lock class,
// atomics-everywhere discipline for sync/atomic fields, and COW publish
// checking for //sqlcm:cow snapshots); see internal/analysis — and
// through the
// lock-hierarchy checker (declared //sqlcm:lock order, missing unlocks,
// sends and outbox enqueues under latches; see internal/lockcheck/check),
// which additionally receives the analysis layer's cross-package lock
// summaries so a call into another package that can reach a classified
// latch is order-checked like a local acquire. -analyzers lists the
// registered checks.
//
// In -lockdoc mode the tree's //sqlcm:lock, //sqlcm:guards,
// //sqlcm:guarded-by and //sqlcm:cow annotations are rendered as
// docs/lock-order.md (order table plus the fields each class guards):
// with -write the file is regenerated, without it the command fails if
// the checked-in document is stale.
//
// Exit status is 1 if any error-severity finding (or unreadable input)
// was reported; -mode strict also fails on warnings.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"sqlcm/internal/analysis"
	"sqlcm/internal/lockcheck/check"
	"sqlcm/internal/rulecheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sqlcm-vet", flag.ContinueOnError)
	fs.SetOutput(errw)
	mode := fs.String("mode", "warn", "strict|warn: strict also fails on warnings")
	code := fs.Bool("code", false, "analyze Go source trees instead of .rules files")
	lockdoc := fs.Bool("lockdoc", false, "check docs/lock-order.md against the //sqlcm:lock annotations")
	write := fs.Bool("write", false, "with -lockdoc: regenerate docs/lock-order.md instead of checking it")
	analyzers := fs.Bool("analyzers", false, "list the registered -code analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: sqlcm-vet [-mode strict|warn] file.rules [dir ...]\n")
		fmt.Fprintf(errw, "       sqlcm-vet -code [dir ...]\n")
		fmt.Fprintf(errw, "       sqlcm-vet -lockdoc [-write] [dir]\n")
		fmt.Fprintf(errw, "       sqlcm-vet -analyzers\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *analyzers {
		for _, a := range analysis.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(out, "%-12s %s\n", "lockcheck", "declared //sqlcm:lock order, unlock balance, sends and enqueues under latches (internal/lockcheck/check)")
		return 0
	}
	if *mode != "strict" && *mode != "warn" {
		fmt.Fprintf(errw, "sqlcm-vet: unknown -mode %q (want strict or warn)\n", *mode)
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		if *code || *lockdoc {
			paths = []string{"."}
		} else {
			fs.Usage()
			return 2
		}
	}

	var errs, warns int
	switch {
	case *lockdoc:
		errs = runLockDoc(paths, *write, out, errw)
	case *code:
		errs = runCode(paths, out, errw)
	default:
		errs, warns = runRules(paths, out, errw)
	}

	if errs > 0 || (*mode == "strict" && warns > 0) {
		return 1
	}
	return 0
}

// runCode analyzes Go source trees. Every finding from the source
// analyzers is a hard error: the annotations are opt-in, so a finding
// means annotated code regressed. The lock-hierarchy checker runs over
// the same roots, fed the type-aware layer's cross-package lock
// summaries: the declared //sqlcm:lock order is part of the code, and
// a call into another package that can reach a classified lock is an
// ordering edge like any local acquire.
func runCode(roots []string, out, errw io.Writer) (errs int) {
	for _, root := range roots {
		prog, err := analysis.LoadTree(root)
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			errs++
			continue
		}
		for _, d := range analysis.RunProgram(prog) {
			fmt.Fprintln(out, d)
			errs++
		}
		lockDiags, err := check.RunTreeWithSummaries(root, prog.LockSummaries())
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			errs++
			continue
		}
		for _, d := range lockDiags {
			fmt.Fprintln(out, d)
			errs++
		}
	}
	return errs
}

// firstLine truncates an analyzer doc to its first sentence line.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runLockDoc regenerates (or staleness-checks) docs/lock-order.md under
// the first root. One root is the expected usage; extra roots are checked
// against their own docs/lock-order.md too.
func runLockDoc(roots []string, write bool, out, errw io.Writer) (errs int) {
	for _, root := range roots {
		want, err := check.DocTree(root)
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			errs++
			continue
		}
		docPath := filepath.Join(root, "docs", "lock-order.md")
		if write {
			if err := os.MkdirAll(filepath.Dir(docPath), 0o755); err != nil {
				fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
				errs++
				continue
			}
			if err := os.WriteFile(docPath, []byte(want), 0o644); err != nil {
				fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
				errs++
				continue
			}
			fmt.Fprintf(out, "wrote %s\n", docPath)
			continue
		}
		got, err := os.ReadFile(docPath)
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v (generate it with sqlcm-vet -lockdoc -write)\n", err)
			errs++
			continue
		}
		if string(got) != want {
			fmt.Fprintf(out, "%s is stale relative to the //sqlcm:lock annotations; regenerate with sqlcm-vet -lockdoc -write\n", docPath)
			errs++
		}
	}
	return errs
}

// runRules checks every .rules file reachable from the arguments.
func runRules(paths []string, out, errw io.Writer) (errs, warns int) {
	for _, path := range expandRules(paths, errw, &errs) {
		e, w := checkRulesFile(path, out, errw)
		errs += e
		warns += w
	}
	return errs, warns
}

// expandRules resolves arguments to .rules files, walking directories.
func expandRules(paths []string, errw io.Writer, errs *int) []string {
	var files []string
	for _, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			*errs++
			continue
		}
		if !info.IsDir() {
			files = append(files, path)
			continue
		}
		err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".rules") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
			*errs++
		}
	}
	return files
}

func checkRulesFile(path string, out, errw io.Writer) (errs, warns int) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(errw, "sqlcm-vet: %v\n", err)
		return 1, 0
	}
	set, diags, err := rulecheck.ParseSet(string(src))
	if err != nil {
		fmt.Fprintf(out, "%s: %v\n", path, err)
		return 1, 0
	}
	diags = append(diags, rulecheck.Check(set)...)
	for _, d := range diags {
		fmt.Fprintf(out, "%s: %s\n", path, d)
		if d.Severity == rulecheck.Error {
			errs++
		} else {
			warns++
		}
	}
	return errs, warns
}
