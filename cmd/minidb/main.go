// Command minidb is an interactive shell over the embedded engine with
// SQLCM monitoring attached — handy for poking at the SQL dialect and for
// demonstrating rules interactively.
//
//	$ minidb
//	minidb> CREATE TABLE t (id INT PRIMARY KEY, v FLOAT);
//	minidb> INSERT INTO t VALUES (1, 2.5), (2, 7.25);
//	minidb> SELECT * FROM t WHERE v > 3;
//
// Meta commands:
//
//	\lats            list registered LATs
//	\lat NAME        print a LAT's rows
//	\rules           list registered rules
//	\active          show executing statements
//	\quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"sqlcm"
)

func main() {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	sess := db.Session(currentUser(), "minidb")

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Println("minidb — embedded SQL engine with SQLCM monitoring (\\quit to exit)")
	var buf strings.Builder
	prompt := "minidb> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") && trimmed != "" {
			prompt = "   ...> "
			continue
		}
		prompt = "minidb> "
		sql := strings.TrimSpace(buf.String())
		buf.Reset()
		if sql == "" || sql == ";" {
			continue
		}
		res, err := sess.Exec(strings.TrimSuffix(sql, ";"), nil)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

func currentUser() string {
	if u := os.Getenv("USER"); u != "" {
		return u
	}
	return "minidb"
}

func printResult(res *sqlcm.Result) {
	if res == nil {
		fmt.Println("ok")
		return
	}
	if res.Columns == nil {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// meta handles backslash commands; returns false to exit.
func meta(db *sqlcm.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\lats":
		for _, n := range db.Monitor().LATs() {
			fmt.Println(n)
		}
	case "\\lat":
		if len(fields) < 2 {
			fmt.Println("usage: \\lat NAME")
			break
		}
		t, ok := db.LAT(fields[1])
		if !ok {
			fmt.Println("no such LAT")
			break
		}
		fmt.Println(strings.Join(t.Spec().Columns(), " | "))
		for _, row := range t.Rows() {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
	case "\\rules":
		for _, n := range db.Monitor().Rules().Rules() {
			fmt.Println(n)
		}
	case "\\active":
		for _, q := range db.ActiveQueries() {
			fmt.Printf("#%d %s/%s %s (%s)\n", q.ID, q.User, q.App, q.Text, q.Elapsed)
		}
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return true
}
