// Command sqlcm-bench regenerates the paper's evaluation tables and
// figures (§6.2). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records a reference run and compares it with the
// paper's numbers.
//
// Usage:
//
//	sqlcm-bench -exp sig            # §6.2.1 signature-computation overhead
//	sqlcm-bench -exp fig2           # Figure 2: rule-evaluation overhead
//	sqlcm-bench -exp fig3           # Figure 3 + accuracy: top-10 task
//	sqlcm-bench -exp failsafe       # robustness under injected faults
//	sqlcm-bench -exp all            # everything
//	sqlcm-bench -exp fig3 -quick    # scaled-down fast run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sqlcm/internal/harness"
	"sqlcm/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: sig, fig2, fig3, failsafe, all")
	quick := flag.Bool("quick", false, "scaled-down configuration (seconds instead of minutes)")
	dataDir := flag.String("datadir", "", "back fig3 engines with files in this directory (real I/O)")
	flag.Parse()

	ok := true
	switch *exp {
	case "sig":
		ok = runSig()
	case "fig2":
		ok = runFig2(*quick)
	case "fig3", "acc":
		ok = runFig3(*quick, *dataDir)
	case "failsafe":
		ok = runFailsafe(*quick)
	case "all":
		ok = runSig() && runFig2(*quick) && runFig3(*quick, *dataDir) && runFailsafe(*quick)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

func runSig() bool {
	fmt.Println("=== E-SIG: signature computation overhead (paper §6.2.1) ===")
	fmt.Println("paper: 0.5% of optimization for trivial selects -> 0.011% for complex TPC-H")
	fmt.Println("(our rule-based optimizer is ~1000x cheaper than SQL Server's; see EXPERIMENTS.md)")
	fmt.Println()
	res, err := harness.RunSignatureOverhead(5000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sig:", err)
		return false
	}
	fmt.Printf("%-42s %10s %10s %10s %10s %12s\n",
		"query class", "parse", "optimize", "signature", "sig/opt", "sig/compile")
	for _, r := range res {
		fmt.Printf("%-42s %9dns %9dns %9dns %9.1f%% %11.1f%%\n",
			r.Class, r.ParseNs, r.OptimizeNs, r.SigNs, r.PctOfOptimize, r.PctOfCompile)
	}
	fmt.Println()
	return true
}

func runFig2(quick bool) bool {
	fmt.Println("=== E-FIG2: rule evaluation + LAT maintenance overhead (Figure 2) ===")
	cfg := harness.Fig2Config{}
	if quick {
		cfg = harness.Fig2Config{
			Queries:    2000,
			Lineitems:  10_000,
			RuleCounts: []int{100, 500, 1000},
			Conditions: []int{1, 20},
		}
	}
	pts, err := harness.RunFig2(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig2:", err)
		return false
	}
	fmt.Println()
	fmt.Printf("%8s %12s %16s %16s %12s %20s\n",
		"rules", "conditions", "baseline", "monitored", "overhead", "per rule-eval cost")
	for _, p := range pts {
		perRule := float64(p.MonitoredNs-p.BaselineNs) / float64(p.Rules) / float64(cfgQueries(cfg))
		fmt.Printf("%8d %12d %16s %16s %11.2f%% %17.0fns\n",
			p.Rules, p.Conditions,
			time.Duration(p.BaselineNs), time.Duration(p.MonitoredNs),
			p.OverheadPct, perRule)
	}
	fmt.Println()
	fmt.Println("paper shape: overhead grows ~linearly with rule count; condition complexity")
	fmt.Println("has little impact (LAT maintenance dominates). See EXPERIMENTS.md for the")
	fmt.Println("absolute-percentage discussion (our substrate executes queries ~2500x faster")
	fmt.Println("than the 2003 testbed, so the same microseconds of rule work are a larger %).")
	fmt.Println()
	return true
}

func cfgQueries(cfg harness.Fig2Config) int {
	if cfg.Queries > 0 {
		return cfg.Queries
	}
	return 10_000
}

func runFig3(quick bool, dataDir string) bool {
	fmt.Println("=== E-FIG3 / E-ACC: top-10 most expensive queries (Figure 3) ===")
	cfg := harness.Fig3Config{DataDir: dataDir}
	if quick {
		cfg.Workload = workload.Config{
			Lineitems:    10_000,
			ShortQueries: 4_000,
			JoinQueries:  40,
			Seed:         11,
		}
		cfg.PollIntervals = []time.Duration{
			time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
		}
	}
	rows, err := harness.RunFig3(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		return false
	}
	fmt.Println()
	fmt.Printf("%-14s %-10s %14s %10s %10s %8s\n",
		"approach", "interval", "elapsed", "overhead", "missed", "polls")
	for _, r := range rows {
		fmt.Printf("%-14s %-10s %14s %9.2f%% %7d/10 %8d\n",
			r.Approach, r.Param, time.Duration(r.ElapsedNs), r.OverheadPct, r.Missed, r.Polls)
	}
	fmt.Println()
	fmt.Println("paper shape: SQLCM cheapest (<0.1% there), PULL lossy (missed 5-9/10),")
	fmt.Println("PULL_history exact but costlier, Query_logging worst (>20%).")
	fmt.Println()
	return true
}

func runFailsafe(quick bool) bool {
	fmt.Println("=== E-FAILSAFE: robustness under injected monitoring faults ===")
	cfg := harness.FailsafeConfig{}
	if quick {
		cfg = harness.FailsafeConfig{Queries: 1500, Lineitems: 8_000}
	}
	res, err := harness.RunFailsafe(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failsafe:", err)
		return false
	}
	fmt.Println()
	fmt.Printf("%-34s %14s\n", "", "per query")
	fmt.Printf("%-34s %13dns\n", "healthy monitoring", res.CleanNs)
	fmt.Printf("%-34s %13dns\n", "panicking rule + hung external", res.FaultedNs)
	fmt.Printf("quarantined rules: %d   events shed: %d   actions shed: %d   dead letters: %d\n",
		res.Quarantines, res.EventsShed, res.ActionsShed, res.DeadLetters)
	fmt.Printf("all %d queries succeeded; outbox drained cleanly: %v\n", res.Queries, res.Drained)
	fmt.Println()
	fmt.Println("the fail-safe layer converts monitoring faults into lost monitoring")
	fmt.Println("fidelity (quarantine/shed/dead-letter counters), never into query errors.")
	fmt.Println()
	return true
}
