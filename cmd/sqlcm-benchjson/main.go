// Command sqlcm-benchjson produces the committed benchmark snapshot
// (BENCH_7.json): the monitoring hot paths as single numbers — end-to-end
// event-dispatch rate, LAT observe cost — plus the wire-level load figures
// at a fixed connection count with monitoring on vs off, and the same load
// through a clean listener vs one injecting 5ms network jitter, so a
// regression in the engine, the front-end or the fault-handling path shows
// up as a diff in a checked-in file.
//
// Usage:
//
//	sqlcm-benchjson -out BENCH_7.json              # full run (1000 conns)
//	sqlcm-benchjson -quick -out /tmp/bench.json    # CI-sized run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"time"

	"sqlcm"
	"sqlcm/internal/faults/netfaults"
	"sqlcm/internal/lat"
	"sqlcm/internal/loadgen"
	"sqlcm/internal/server"
	"sqlcm/internal/sim"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/workload"
)

type hostInfo struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Go     string `json:"go"`
}

type dispatchBench struct {
	Statements   int     `json:"statements"`
	Events       int64   `json:"events"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	StmtsPerSec  float64 `json:"stmts_per_sec"`
}

type latBench struct {
	Inserts int   `json:"inserts"`
	Groups  int   `json:"groups"`
	NsPerOp int64 `json:"ns_per_op"`
}

type loadBench struct {
	Conns         int            `json:"conns"`
	Rate          float64        `json:"rate_target_per_sec"`
	DurationNs    int64          `json:"duration_ns"`
	MonitoringOn  loadgen.Result `json:"monitoring_on"`
	MonitoringOff loadgen.Result `json:"monitoring_off"`
}

type netchaosBench struct {
	Conns      int            `json:"conns"`
	Rate       float64        `json:"rate_target_per_sec"`
	DurationNs int64          `json:"duration_ns"`
	Clean      loadgen.Result `json:"clean"`
	Jitter5ms  loadgen.Result `json:"jitter_5ms"`
}

type benchFile struct {
	Generated string        `json:"generated"`
	Host      hostInfo      `json:"host"`
	Dispatch  dispatchBench `json:"dispatch"`
	LAT       latBench      `json:"lat_observe"`
	Load      loadBench     `json:"load"`
	Netchaos  netchaosBench `json:"netchaos"`
}

func main() {
	out := flag.String("out", "BENCH_7.json", "output file")
	conns := flag.Int("conns", 1000, "load-bench connection count")
	rate := flag.Float64("rate", 2000, "load-bench target statements/sec")
	duration := flag.Duration("duration", 10*time.Second, "load-bench run length per monitoring mode")
	quick := flag.Bool("quick", false, "CI-sized run (fewer conns, shorter, fewer ops)")
	flag.Parse()

	stmts, inserts := 20000, 200000
	if *quick {
		*conns, *rate, *duration = 50, 300, 2*time.Second
		stmts, inserts = 2000, 20000
	}

	var bf benchFile
	bf.Generated = time.Now().UTC().Format(time.RFC3339)
	bf.Host = hostInfo{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Go: runtime.Version()}

	var err error
	if bf.Dispatch, err = benchDispatch(stmts); err != nil {
		fatal(err)
	}
	fmt.Printf("dispatch: %.0f events/sec (%.0f stmts/sec)\n", bf.Dispatch.EventsPerSec, bf.Dispatch.StmtsPerSec)
	if bf.LAT, err = benchLAT(inserts); err != nil {
		fatal(err)
	}
	fmt.Printf("lat observe: %d ns/op over %d groups\n", bf.LAT.NsPerOp, bf.LAT.Groups)
	if bf.Load, err = benchLoad(*conns, *rate, *duration); err != nil {
		fatal(err)
	}
	fmt.Printf("load on:  %s\n", bf.Load.MonitoringOn)
	fmt.Printf("load off: %s\n", bf.Load.MonitoringOff)
	// The netchaos comparison uses a smaller fleet: jitter costs wall time
	// per statement, and the point is the percentile delta, not scale.
	ncConns, ncRate := *conns/10, *rate/10
	if ncConns < 10 {
		ncConns, ncRate = 10, 100
	}
	if bf.Netchaos, err = benchNetchaos(ncConns, ncRate, *duration); err != nil {
		fatal(err)
	}
	fmt.Printf("netchaos clean:  %s\n", bf.Netchaos.Clean)
	fmt.Printf("netchaos jitter: %s\n", bf.Netchaos.Jitter5ms)

	buf, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlcm-benchjson:", err)
	os.Exit(1)
}

// benchDispatch measures the end-to-end monitored statement path: a
// quickstart-style rule set (per-template LAT + always-true collect rule)
// over repeated point selects, reported as bus events per second.
func benchDispatch(n int) (dispatchBench, error) {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return dispatchBench{}, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Count, Attr: "ID", Name: "N"},
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Duration"},
		},
	}); err != nil {
		return dispatchBench{}, err
	}
	if _, err := db.NewRule("collect", "Query.Commit", "", &sqlcm.InsertAction{LAT: "ByTemplate"}); err != nil {
		return dispatchBench{}, err
	}
	if _, err := db.Exec("CREATE TABLE b (id INT PRIMARY KEY, v FLOAT)", nil); err != nil {
		return dispatchBench{}, err
	}
	sess := db.Session("bench", "benchjson")
	for i := 0; i < 100; i++ {
		if _, err := sess.Exec("INSERT INTO b VALUES (@i, @v)", map[string]sqlcm.Value{
			"i": sqlcm.NewInt(int64(i)), "v": sqlcm.NewFloat(float64(i)),
		}); err != nil {
			return dispatchBench{}, err
		}
	}
	base := db.Monitor().Events()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := sess.Exec("SELECT v FROM b WHERE id = @i", map[string]sqlcm.Value{
			"i": sqlcm.NewInt(int64(i % 100)),
		}); err != nil {
			return dispatchBench{}, err
		}
	}
	elapsed := time.Since(start)
	events := db.Monitor().Events() - base
	return dispatchBench{
		Statements:   n,
		Events:       events,
		ElapsedNs:    elapsed.Nanoseconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		StmtsPerSec:  float64(n) / elapsed.Seconds(),
	}, nil
}

// benchLAT measures the LAT observe path alone: Insert of one monitored
// object into a grouped two-aggregate table, ns per op.
func benchLAT(n int) (latBench, error) {
	table, err := lat.New(lat.Spec{
		Name:    "Bench",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []lat.AggCol{
			{Func: lat.Count, Attr: "ID", Name: "N"},
			{Func: lat.Avg, Attr: "Duration", Name: "Avg_Duration"},
		},
	})
	if err != nil {
		return latBench{}, err
	}
	const groups = 64
	r := rand.New(rand.NewSource(1))
	sigs := make([]sqltypes.Value, groups)
	for i := range sigs {
		sigs[i] = sqltypes.NewString(fmt.Sprintf("q%03d", i))
	}
	var sig, id, dur sqltypes.Value
	get := func(attr string) (sqltypes.Value, bool) {
		switch attr {
		case "Logical_Signature":
			return sig, true
		case "ID":
			return id, true
		case "Duration":
			return dur, true
		}
		return sqltypes.Null, false
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		sig = sigs[r.Intn(groups)]
		id = sqltypes.NewInt(int64(i))
		dur = sqltypes.NewFloat(r.Float64())
		if err := table.Insert(get); err != nil {
			return latBench{}, err
		}
	}
	elapsed := time.Since(start)
	return latBench{
		Inserts: n,
		Groups:  groups,
		NsPerOp: elapsed.Nanoseconds() / int64(n),
	}, nil
}

// benchLoad runs the wire-level open-loop harness against an in-process
// server twice — monitoring attached, then suspended — at a fixed
// connection count.
func benchLoad(conns int, rate float64, duration time.Duration) (loadBench, error) {
	res := loadBench{Conns: conns, Rate: rate, DurationNs: duration.Nanoseconds()}
	on, err := benchLoadOnce(conns, rate, duration, true)
	if err != nil {
		return res, err
	}
	off, err := benchLoadOnce(conns, rate, duration, false)
	if err != nil {
		return res, err
	}
	res.MonitoringOn, res.MonitoringOff = on, off
	return res, nil
}

// benchNetchaos runs the wire load twice — through a clean listener and
// through one afflicting every connection with 5ms of uniform jitter —
// so the committed file pins the latency cost of degraded networks.
func benchNetchaos(conns int, rate float64, duration time.Duration) (netchaosBench, error) {
	res := netchaosBench{Conns: conns, Rate: rate, DurationNs: duration.Nanoseconds()}
	clean, err := benchChaosOnce(conns, rate, duration, 0)
	if err != nil {
		return res, err
	}
	jitter, err := benchChaosOnce(conns, rate, duration, 5*time.Millisecond)
	if err != nil {
		return res, err
	}
	res.Clean, res.Jitter5ms = clean, jitter
	return res, nil
}

func benchChaosOnce(conns int, rate float64, duration, jitter time.Duration) (loadgen.Result, error) {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := workload.Setup(db.Engine(), workload.Config{Lineitems: 4000}); err != nil {
		return loadgen.Result{}, err
	}
	cfg := server.Config{
		Addr:             "127.0.0.1:0",
		MaxConns:         conns + 10,
		StatementTimeout: 5 * time.Second,
		NewSession:       db.RemoteSession,
		Drain:            db.Flush,
	}
	if jitter > 0 {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.Result{}, err
		}
		cfg.Listener = netfaults.Wrap(lis, netfaults.Config{
			Seed:     1,
			Fraction: 1.0,
			Plans:    []netfaults.Plan{netfaults.JitterPlan(jitter)},
		})
	}
	srv, err := server.New(cfg)
	if err != nil {
		return loadgen.Result{}, err
	}
	if err := srv.Start(); err != nil {
		return loadgen.Result{}, err
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:      srv.Addr().String(),
		Conns:     conns,
		Rate:      rate,
		Duration:  duration,
		Profile:   sim.ProfileOLTP,
		Keys:      1000,
		Seed:      1,
		Reconnect: true,
	})
	if serr := srv.Shutdown(10 * time.Second); serr != nil && err == nil {
		err = serr
	}
	return res, err
}

func benchLoadOnce(conns int, rate float64, duration time.Duration, monitoring bool) (loadgen.Result, error) {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Count, Attr: "ID", Name: "N"},
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Duration"},
		},
	}); err != nil {
		return loadgen.Result{}, err
	}
	if _, err := db.NewRule("collect", "Query.Commit", "", &sqlcm.InsertAction{LAT: "ByTemplate"}); err != nil {
		return loadgen.Result{}, err
	}
	if !monitoring {
		db.Monitor().Suspend()
	}
	if _, err := workload.Setup(db.Engine(), workload.Config{Lineitems: 4000}); err != nil {
		return loadgen.Result{}, err
	}
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		MaxConns:   conns + 10,
		NewSession: db.RemoteSession,
		Drain:      db.Flush,
	})
	if err != nil {
		return loadgen.Result{}, err
	}
	if err := srv.Start(); err != nil {
		return loadgen.Result{}, err
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:     srv.Addr().String(),
		Conns:    conns,
		Rate:     rate,
		Duration: duration,
		Profile:  sim.ProfileOLTP,
		Keys:     1000,
		Seed:     1,
	})
	if serr := srv.Shutdown(10 * time.Second); serr != nil && err == nil {
		err = serr
	}
	return res, err
}
