// Command sqlcm-benchjson produces the committed benchmark snapshot
// (BENCH_10.json): the monitoring hot paths as single numbers — end-to-end
// event-dispatch rate, LAT observe cost — plus the wire-level load figures
// at a fixed connection count with monitoring on vs off, the same load
// through a clean listener vs one injecting 5ms network jitter, and a
// read-mostly readers-vs-one-hot-writer comparison of MVCC snapshot reads
// against the 2PL baseline, so a regression in the engine, the front-end
// or the fault-handling path shows up as a diff in a checked-in file.
//
// Usage:
//
//	sqlcm-benchjson -out BENCH_10.json             # full run (1000 conns)
//	sqlcm-benchjson -quick -out /tmp/bench.json    # CI-sized run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"time"

	"sqlcm"
	"sqlcm/internal/faults/netfaults"
	"sqlcm/internal/lat"
	"sqlcm/internal/loadgen"
	"sqlcm/internal/server"
	"sqlcm/internal/sim"
	"sqlcm/internal/sqltypes"
	"sqlcm/internal/workload"
)

type hostInfo struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Go     string `json:"go"`
}

type dispatchBench struct {
	Statements   int     `json:"statements"`
	Events       int64   `json:"events"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	StmtsPerSec  float64 `json:"stmts_per_sec"`
}

type latBench struct {
	Inserts int   `json:"inserts"`
	Groups  int   `json:"groups"`
	NsPerOp int64 `json:"ns_per_op"`
}

type loadBench struct {
	Conns         int            `json:"conns"`
	Rate          float64        `json:"rate_target_per_sec"`
	DurationNs    int64          `json:"duration_ns"`
	MonitoringOn  loadgen.Result `json:"monitoring_on"`
	MonitoringOff loadgen.Result `json:"monitoring_off"`
}

type netchaosBench struct {
	Conns      int            `json:"conns"`
	Rate       float64        `json:"rate_target_per_sec"`
	DurationNs int64          `json:"duration_ns"`
	Clean      loadgen.Result `json:"clean"`
	Jitter5ms  loadgen.Result `json:"jitter_5ms"`
}

// mvccScalePoint compares MVCC snapshot reads against the 2PL baseline at
// one reader-fleet size: wire-level read-only load percentiles plus the
// in-process hot writer's commit count for each mode.
type mvccScalePoint struct {
	ReaderConns        int            `json:"reader_conns"`
	ReaderRate         float64        `json:"reader_rate_target_per_sec"`
	MVCCReaders        loadgen.Result `json:"mvcc_readers"`
	TwoPLReaders       loadgen.Result `json:"two_phase_locking_readers"`
	MVCCWriterCommits  int64          `json:"mvcc_writer_commits"`
	TwoPLWriterCommits int64          `json:"two_phase_locking_writer_commits"`
}

type mvccBench struct {
	DurationNs   int64            `json:"duration_ns"`
	WriterHoldNs int64            `json:"writer_hold_ns"`
	Scaling      []mvccScalePoint `json:"reader_scaling"`
}

type benchFile struct {
	Generated string        `json:"generated"`
	Host      hostInfo      `json:"host"`
	Dispatch  dispatchBench `json:"dispatch"`
	LAT       latBench      `json:"lat_observe"`
	Load      loadBench     `json:"load"`
	Netchaos  netchaosBench `json:"netchaos"`
	MVCC      mvccBench     `json:"mvcc"`
}

func main() {
	out := flag.String("out", "BENCH_10.json", "output file")
	conns := flag.Int("conns", 1000, "load-bench connection count")
	rate := flag.Float64("rate", 2000, "load-bench target statements/sec")
	duration := flag.Duration("duration", 10*time.Second, "load-bench run length per monitoring mode")
	quick := flag.Bool("quick", false, "CI-sized run (fewer conns, shorter, fewer ops)")
	flag.Parse()

	stmts, inserts := 20000, 200000
	if *quick {
		*conns, *rate, *duration = 50, 300, 2*time.Second
		stmts, inserts = 2000, 20000
	}

	var bf benchFile
	bf.Generated = time.Now().UTC().Format(time.RFC3339)
	bf.Host = hostInfo{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Go: runtime.Version()}

	var err error
	if bf.Dispatch, err = benchDispatch(stmts); err != nil {
		fatal(err)
	}
	fmt.Printf("dispatch: %.0f events/sec (%.0f stmts/sec)\n", bf.Dispatch.EventsPerSec, bf.Dispatch.StmtsPerSec)
	if bf.LAT, err = benchLAT(inserts); err != nil {
		fatal(err)
	}
	fmt.Printf("lat observe: %d ns/op over %d groups\n", bf.LAT.NsPerOp, bf.LAT.Groups)
	if bf.Load, err = benchLoad(*conns, *rate, *duration); err != nil {
		fatal(err)
	}
	fmt.Printf("load on:  %s\n", bf.Load.MonitoringOn)
	fmt.Printf("load off: %s\n", bf.Load.MonitoringOff)
	// The netchaos comparison uses a smaller fleet: jitter costs wall time
	// per statement, and the point is the percentile delta, not scale.
	ncConns, ncRate := *conns/10, *rate/10
	if ncConns < 10 {
		ncConns, ncRate = 10, 100
	}
	if bf.Netchaos, err = benchNetchaos(ncConns, ncRate, *duration); err != nil {
		fatal(err)
	}
	fmt.Printf("netchaos clean:  %s\n", bf.Netchaos.Clean)
	fmt.Printf("netchaos jitter: %s\n", bf.Netchaos.Jitter5ms)
	readerFleets := []int{8, 32}
	if *quick {
		readerFleets = []int{4, 8}
	}
	if bf.MVCC, err = benchMVCC(readerFleets, *duration); err != nil {
		fatal(err)
	}
	for _, p := range bf.MVCC.Scaling {
		fmt.Printf("mvcc %d readers: %s (writer commits %d)\n", p.ReaderConns, p.MVCCReaders, p.MVCCWriterCommits)
		fmt.Printf("2pl  %d readers: %s (writer commits %d)\n", p.ReaderConns, p.TwoPLReaders, p.TwoPLWriterCommits)
	}

	buf, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlcm-benchjson:", err)
	os.Exit(1)
}

// benchDispatch measures the end-to-end monitored statement path: a
// quickstart-style rule set (per-template LAT + always-true collect rule)
// over repeated point selects, reported as bus events per second.
func benchDispatch(n int) (dispatchBench, error) {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return dispatchBench{}, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Count, Attr: "ID", Name: "N"},
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Duration"},
		},
	}); err != nil {
		return dispatchBench{}, err
	}
	if _, err := db.NewRule("collect", "Query.Commit", "", &sqlcm.InsertAction{LAT: "ByTemplate"}); err != nil {
		return dispatchBench{}, err
	}
	if _, err := db.Exec("CREATE TABLE b (id INT PRIMARY KEY, v FLOAT)", nil); err != nil {
		return dispatchBench{}, err
	}
	sess := db.Session("bench", "benchjson")
	for i := 0; i < 100; i++ {
		if _, err := sess.Exec("INSERT INTO b VALUES (@i, @v)", map[string]sqlcm.Value{
			"i": sqlcm.NewInt(int64(i)), "v": sqlcm.NewFloat(float64(i)),
		}); err != nil {
			return dispatchBench{}, err
		}
	}
	base := db.Monitor().Events()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := sess.Exec("SELECT v FROM b WHERE id = @i", map[string]sqlcm.Value{
			"i": sqlcm.NewInt(int64(i % 100)),
		}); err != nil {
			return dispatchBench{}, err
		}
	}
	elapsed := time.Since(start)
	events := db.Monitor().Events() - base
	return dispatchBench{
		Statements:   n,
		Events:       events,
		ElapsedNs:    elapsed.Nanoseconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		StmtsPerSec:  float64(n) / elapsed.Seconds(),
	}, nil
}

// benchLAT measures the LAT observe path alone: Insert of one monitored
// object into a grouped two-aggregate table, ns per op.
func benchLAT(n int) (latBench, error) {
	table, err := lat.New(lat.Spec{
		Name:    "Bench",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []lat.AggCol{
			{Func: lat.Count, Attr: "ID", Name: "N"},
			{Func: lat.Avg, Attr: "Duration", Name: "Avg_Duration"},
		},
	})
	if err != nil {
		return latBench{}, err
	}
	const groups = 64
	r := rand.New(rand.NewSource(1))
	sigs := make([]sqltypes.Value, groups)
	for i := range sigs {
		sigs[i] = sqltypes.NewString(fmt.Sprintf("q%03d", i))
	}
	var sig, id, dur sqltypes.Value
	get := func(attr string) (sqltypes.Value, bool) {
		switch attr {
		case "Logical_Signature":
			return sig, true
		case "ID":
			return id, true
		case "Duration":
			return dur, true
		}
		return sqltypes.Null, false
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		sig = sigs[r.Intn(groups)]
		id = sqltypes.NewInt(int64(i))
		dur = sqltypes.NewFloat(r.Float64())
		if err := table.Insert(get); err != nil {
			return latBench{}, err
		}
	}
	elapsed := time.Since(start)
	return latBench{
		Inserts: n,
		Groups:  groups,
		NsPerOp: elapsed.Nanoseconds() / int64(n),
	}, nil
}

// benchLoad runs the wire-level open-loop harness against an in-process
// server twice — monitoring attached, then suspended — at a fixed
// connection count.
func benchLoad(conns int, rate float64, duration time.Duration) (loadBench, error) {
	res := loadBench{Conns: conns, Rate: rate, DurationNs: duration.Nanoseconds()}
	on, err := benchLoadOnce(conns, rate, duration, true)
	if err != nil {
		return res, err
	}
	off, err := benchLoadOnce(conns, rate, duration, false)
	if err != nil {
		return res, err
	}
	res.MonitoringOn, res.MonitoringOff = on, off
	return res, nil
}

// benchNetchaos runs the wire load twice — through a clean listener and
// through one afflicting every connection with 5ms of uniform jitter —
// so the committed file pins the latency cost of degraded networks.
func benchNetchaos(conns int, rate float64, duration time.Duration) (netchaosBench, error) {
	res := netchaosBench{Conns: conns, Rate: rate, DurationNs: duration.Nanoseconds()}
	clean, err := benchChaosOnce(conns, rate, duration, 0)
	if err != nil {
		return res, err
	}
	jitter, err := benchChaosOnce(conns, rate, duration, 5*time.Millisecond)
	if err != nil {
		return res, err
	}
	res.Clean, res.Jitter5ms = clean, jitter
	return res, nil
}

func benchChaosOnce(conns int, rate float64, duration, jitter time.Duration) (loadgen.Result, error) {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := workload.Setup(db.Engine(), workload.Config{Lineitems: 4000}); err != nil {
		return loadgen.Result{}, err
	}
	cfg := server.Config{
		Addr:             "127.0.0.1:0",
		MaxConns:         conns + 10,
		StatementTimeout: 5 * time.Second,
		NewSession:       db.RemoteSession,
		Drain:            db.Flush,
	}
	if jitter > 0 {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.Result{}, err
		}
		cfg.Listener = netfaults.Wrap(lis, netfaults.Config{
			Seed:     1,
			Fraction: 1.0,
			Plans:    []netfaults.Plan{netfaults.JitterPlan(jitter)},
		})
	}
	srv, err := server.New(cfg)
	if err != nil {
		return loadgen.Result{}, err
	}
	if err := srv.Start(); err != nil {
		return loadgen.Result{}, err
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:      srv.Addr().String(),
		Conns:     conns,
		Rate:      rate,
		Duration:  duration,
		Profile:   sim.ProfileOLTP,
		Keys:      1000,
		Seed:      1,
		Reconnect: true,
	})
	if serr := srv.Shutdown(10 * time.Second); serr != nil && err == nil {
		err = serr
	}
	return res, err
}

// mvccReadMix is the read-only statement mix for the MVCC comparison
// (cumulative cut-points for sel_l / sel_o / upd_l, remainder upd_o).
var mvccReadMix = [6]int{60, 100, 100, 100, 100, 100}

// writerHold is how long the hot writer's transaction keeps its exclusive
// lock each cycle — the realistic hot-writer shape: locks are held across
// a transaction, not just for one statement.
const writerHold = 5 * time.Millisecond

// benchMVCC runs a read-only wire-level fleet against one in-process hot
// writer that transacts in a BEGIN / UPDATE lineitem / hold / COMMIT loop,
// once with MVCC snapshot reads and once with pure 2PL reads, monitoring
// attached in both runs. Under 2PL every lineitem read serializes behind
// the writer's exclusive table lock (held writerHold per cycle) and the
// writer in turn queues behind reader shared locks; with MVCC the readers
// never touch the lock manager. Reader throughput/percentiles at growing
// fleet sizes plus the writer's commit count pin the benefit of versioned
// reads on both sides.
func benchMVCC(readerFleets []int, duration time.Duration) (mvccBench, error) {
	res := mvccBench{DurationNs: duration.Nanoseconds(), WriterHoldNs: writerHold.Nanoseconds()}
	for _, readers := range readerFleets {
		// Per-connection rate is set above what a 2PL reader can sustain
		// while the writer holds the table lock (avg read service there is
		// ~2ms, bounding a synchronous connection near 500/s), so the lock
		// schedule shows up in completed throughput, not just percentiles.
		pt := mvccScalePoint{ReaderConns: readers, ReaderRate: float64(800 * readers)}
		var err error
		if pt.MVCCReaders, pt.MVCCWriterCommits, err = benchMVCCOnce(readers, pt.ReaderRate, duration, false); err != nil {
			return res, err
		}
		if pt.TwoPLReaders, pt.TwoPLWriterCommits, err = benchMVCCOnce(readers, pt.ReaderRate, duration, true); err != nil {
			return res, err
		}
		res.Scaling = append(res.Scaling, pt)
	}
	return res, nil
}

func benchMVCCOnce(readers int, readerRate float64, duration time.Duration, disableMVCC bool) (loadgen.Result, int64, error) {
	db, err := sqlcm.Open(sqlcm.Config{DisableMVCC: disableMVCC})
	if err != nil {
		return loadgen.Result{}, 0, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Count, Attr: "ID", Name: "N"},
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Duration"},
		},
	}); err != nil {
		return loadgen.Result{}, 0, err
	}
	if _, err := db.NewRule("collect", "Query.Commit", "", &sqlcm.InsertAction{LAT: "ByTemplate"}); err != nil {
		return loadgen.Result{}, 0, err
	}
	if _, err := workload.Setup(db.Engine(), workload.Config{Lineitems: 4000}); err != nil {
		return loadgen.Result{}, 0, err
	}
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		MaxConns:   readers + 10,
		NewSession: db.RemoteSession,
		Drain:      db.Flush,
	})
	if err != nil {
		return loadgen.Result{}, 0, err
	}
	if err := srv.Start(); err != nil {
		return loadgen.Result{}, 0, err
	}

	// The hot writer: an in-process transaction loop holding the lineitem
	// X lock for writerHold per cycle.
	stop := make(chan struct{})
	done := make(chan int64, 1)
	go func() {
		sess := db.Session("writer", "benchjson")
		r := rand.New(rand.NewSource(2))
		var commits int64
		for {
			select {
			case <-stop:
				done <- commits
				return
			default:
			}
			step := func(sql string, params map[string]sqlcm.Value) bool {
				if _, err := sess.Exec(sql, params); err != nil {
					sess.Exec("ROLLBACK", nil) //nolint:errcheck
					return false
				}
				return true
			}
			if step("BEGIN", nil) &&
				step("UPDATE lineitem SET l_quantity = @q WHERE l_id = @k", map[string]sqlcm.Value{
					"q": sqlcm.NewFloat(float64(1 + r.Intn(50))),
					"k": sqlcm.NewInt(int64(1 + r.Intn(100))), // hot keys
				}) {
				time.Sleep(writerHold)
				if step("COMMIT", nil) {
					commits++
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	res, err := loadgen.Run(loadgen.Config{
		Addr:     srv.Addr().String(),
		Conns:    readers,
		Rate:     readerRate,
		Duration: duration,
		Mix:      &mvccReadMix,
		Keys:     1000,
		Seed:     1,
		User:     "reader",
	})
	close(stop)
	commits := <-done
	if serr := srv.Shutdown(10 * time.Second); serr != nil && err == nil {
		err = serr
	}
	return res, commits, err
}

func benchLoadOnce(conns int, rate float64, duration time.Duration, monitoring bool) (loadgen.Result, error) {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Count, Attr: "ID", Name: "N"},
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Duration"},
		},
	}); err != nil {
		return loadgen.Result{}, err
	}
	if _, err := db.NewRule("collect", "Query.Commit", "", &sqlcm.InsertAction{LAT: "ByTemplate"}); err != nil {
		return loadgen.Result{}, err
	}
	if !monitoring {
		db.Monitor().Suspend()
	}
	if _, err := workload.Setup(db.Engine(), workload.Config{Lineitems: 4000}); err != nil {
		return loadgen.Result{}, err
	}
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		MaxConns:   conns + 10,
		NewSession: db.RemoteSession,
		Drain:      db.Flush,
	})
	if err != nil {
		return loadgen.Result{}, err
	}
	if err := srv.Start(); err != nil {
		return loadgen.Result{}, err
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:     srv.Addr().String(),
		Conns:    conns,
		Rate:     rate,
		Duration: duration,
		Profile:  sim.ProfileOLTP,
		Keys:     1000,
		Seed:     1,
	})
	if serr := srv.Shutdown(10 * time.Second); serr != nil && err == nil {
		err = serr
	}
	return res, err
}
