// Command sqlcm-load is the open-loop load harness for sqlcm-serve: it
// opens many concurrent connections, prepares the workload statement set
// on each, then issues Zipf-skewed point reads and writes on a fixed
// schedule and reports throughput and latency percentiles. Latency is
// measured from the scheduled send time (open loop), so server slowdowns
// show up as queueing delay instead of vanishing into a throttled
// generator.
//
// The server must have the workload schema loaded (sqlcm-serve
// -lineitems N, with N >= -keys).
//
// Usage:
//
//	sqlcm-load -addr 127.0.0.1:5477 -conns 100 -rate 500 -duration 10s
//	sqlcm-load -profile blocker       # write-heavy mix
//	sqlcm-load -json                  # machine-readable result
//	sqlcm-load -reconnect -timeout 1s # survive transport faults; classify errors
//
// The summary breaks errors down by class — timeout, reset, reject,
// shed, other — plus the reconnect count; "other" staying at zero is the
// protocol-corruption check under fault injection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sqlcm/internal/loadgen"
	"sqlcm/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5477", "server address")
	conns := flag.Int("conns", 100, "concurrent connections")
	rate := flag.Float64("rate", 500, "target statements/sec across all connections")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	profile := flag.String("profile", "oltp", "statement-mix profile: oltp, blocker or timer")
	keys := flag.Int("keys", 1000, "lineitem key-space size (must not exceed loaded rows)")
	skew := flag.Float64("skew", 1.3, "Zipf skew of key and statement choice")
	seed := flag.Int64("seed", 1, "generator seed")
	user := flag.String("user", "load", "connection user")
	password := flag.String("password", "", "connection password")
	reconnect := flag.Bool("reconnect", false, "redial broken connections with exponential backoff instead of retiring the worker")
	timeout := flag.Duration("timeout", 0, "client-side deadline per dial and exchange (0 = the client default of 30s)")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	flag.Parse()

	prof, err := sim.ParseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlcm-load:", err)
		os.Exit(2)
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr:     *addr,
		Conns:    *conns,
		Rate:     *rate,
		Duration: *duration,
		Profile:  prof,
		Keys:     *keys,
		Skew:     *skew,
		Seed:          *seed,
		User:          *user,
		Password:      *password,
		Reconnect:     *reconnect,
		ClientTimeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlcm-load:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res) //nolint:errcheck
		return
	}
	fmt.Println(res)
}
