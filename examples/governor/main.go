// Resource governing (Example 5, §3 of the paper): a Timer-driven watchdog
// rule iterates over all executing statements and cancels any that exceed
// a runtime budget — a server-side action no client-side monitoring tool
// can take.
package main

import (
	"fmt"
	"log"
	"time"

	"sqlcm"
)

func main() {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	setup := db.Session("admin", "setup")
	mustExec(setup, "CREATE TABLE jobs (id INT PRIMARY KEY, state VARCHAR)")
	for i := 1; i <= 500; i++ {
		mustExec(setup, fmt.Sprintf("INSERT INTO jobs VALUES (%d, 'queued')", i))
	}

	// Watchdog: every 50ms, look at all active Query objects; cancel any
	// running longer than 250ms, and notify the DBA.
	if _, err := db.NewRule("governor", "Timer.Alarm", "Query.Duration > 0.25",
		&sqlcm.SendMailAction{Address: "dba@example.com",
			Text: "cancelling runaway query {Query.ID} of {Query.User} after {Query.Duration}s"},
		&sqlcm.CancelAction{Class: "Query"},
	); err != nil {
		log.Fatal(err)
	}
	if err := db.SetTimer("watchdog", 50*time.Millisecond, -1); err != nil {
		log.Fatal(err)
	}

	// The "runaway": a statement stuck behind a long transaction's lock.
	// (Reads are MVCC snapshot reads and never wait, so the runaway is a
	// second writer parked on the first writer's exclusive lock.)
	blocker := db.Session("batch", "bulk-update")
	mustExec(blocker, "BEGIN")
	mustExec(blocker, "UPDATE jobs SET state = 'running' WHERE id = 1")

	victim := db.Session("analyst", "dashboard")
	start := time.Now()
	_, err = victim.Exec("UPDATE jobs SET state = 'retried' WHERE id = 2", nil)
	elapsed := time.Since(start)
	mustExec(blocker, "COMMIT")

	if err != nil {
		fmt.Printf("runaway query cancelled by the governor after %v: %v\n", elapsed.Round(time.Millisecond), err)
	} else {
		fmt.Println("query survived (governor too slow?)")
	}
	db.Flush(2 * time.Second) // actions run async; quiesce before reading
	mailer := db.Monitor().Mailer().(*sqlcm.MemMailer)
	for _, m := range mailer.Sent() {
		fmt.Printf("mail to %s: %s\n", m.Addr, m.Body)
	}
}

func mustExec(sess *sqlcm.Session, sql string) {
	if _, err := sess.Exec(sql, nil); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
