// Outlier detection (Example 1, §3 of the paper): detect invocations of a
// stored procedure that run much slower (here 5x) than the average
// instance of the same template, using an aging average so the baseline
// tracks recent behaviour.
package main

import (
	"fmt"
	"log"
	"time"

	"sqlcm"
)

func main() {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sess := db.Session("app", "orders-service")
	mustExec(sess, "CREATE TABLE orders (id INT PRIMARY KEY, cust INT, total FLOAT)")
	for i := 1; i <= 5000; i++ {
		mustExec(sess, fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d.0)", i, i%100, i))
	}
	// The monitored stored procedure: its cost depends on the parameter.
	mustExec(sess, `CREATE PROCEDURE order_report (@lo INT, @hi INT) AS BEGIN
		SELECT COUNT(*), SUM(total) FROM orders WHERE id >= @lo AND id <= @hi;
	END`)

	// Duration_LAT from §4.3 of the paper, with an aging average: old
	// observations stop influencing the baseline after a minute.
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "Duration_LAT",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Duration", Aging: true},
			{Func: sqlcm.Count, Name: "N"},
		},
		AgingWindow: time.Minute,
		AgingBlock:  5 * time.Second,
	}); err != nil {
		log.Fatal(err)
	}

	// The paper's outlier rule, §5.2, verbatim:
	//   Event:     Query.Commit
	//   Condition: Query.Duration > 5 * Duration_LAT.Avg_Duration
	//   Action:    Query.Persist(TableName, Query_Text)
	if _, err := db.NewRule("outlier", "Query.Commit",
		"Query.Duration > 5 * Duration_LAT.Avg_Duration",
		&sqlcm.PersistAction{Table: "outliers", Attrs: []string{"ID", "Query_Text", "Duration"}},
		&sqlcm.SendMailAction{Address: "dba@example.com",
			Text: "outlier instance {ID}: {Duration}s vs avg {Duration_LAT.Avg_Duration}s"},
	); err != nil {
		log.Fatal(err)
	}
	if _, err := db.NewRule("maintain", "Query.Commit", "",
		&sqlcm.InsertAction{LAT: "Duration_LAT"}); err != nil {
		log.Fatal(err)
	}

	// Normal traffic: small reports.
	for i := 0; i < 200; i++ {
		mustExec(sess, fmt.Sprintf("EXEC order_report %d, %d", i*10+1, i*10+20))
	}
	// A problematic parameter combination: a full-table report.
	mustExec(sess, "EXEC order_report 1, 5000")

	db.Flush(2 * time.Second) // actions run async; quiesce before reading
	rows, err := db.ReadTable("outliers")
	if err != nil {
		log.Fatal("no outliers table:", err)
	}
	fmt.Printf("detected %d outlier invocation(s):\n", len(rows))
	for _, r := range rows {
		fmt.Printf("  query #%d ran %.3fms: %.60s\n", r[0].Int(), r[2].Float()*1e3, r[1].Str())
	}
	mailer := db.Monitor().Mailer().(*sqlcm.MemMailer)
	for _, m := range mailer.Sent() {
		fmt.Printf("mail to %s: %s\n", m.Addr, m.Body)
	}
}

func mustExec(sess *sqlcm.Session, sql string) {
	if _, err := sess.Exec(sql, nil); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
