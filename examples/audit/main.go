// Usage auditing (Example 4, §3 of the paper): summarize query templates
// per application — frequency, average and maximum duration — collected
// synchronously with execution and persisted asynchronously by a timer
// (the paper's "24 hour period" shortened to seconds for the demo).
package main

import (
	"fmt"
	"log"
	"time"

	"sqlcm"
)

func main() {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	setup := db.Session("admin", "setup")
	mustExec(setup, "CREATE TABLE docs (id INT PRIMARY KEY, owner VARCHAR, bytes INT)")
	for i := 1; i <= 2000; i++ {
		mustExec(setup, fmt.Sprintf("INSERT INTO docs VALUES (%d, 'u%d', %d)", i, i%13, i*17))
	}

	// Per-(application, template) usage summary.
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "Usage",
		GroupBy: []string{"Application", "Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Count, Name: "Freq"},
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Dur"},
			{Func: sqlcm.Max, Attr: "Duration", Name: "Max_Dur"},
			{Func: sqlcm.First, Attr: "Query_Text", Name: "Sample"},
		},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.NewRule("collect", "Query.Commit", "",
		&sqlcm.InsertAction{LAT: "Usage"}); err != nil {
		log.Fatal(err)
	}
	// Asynchronous flush: persist the summary and reset the window.
	if _, err := db.NewRule("flush", "Timer.Alarm", "",
		&sqlcm.PersistAction{Table: "usage_report", FromLAT: "Usage"},
		&sqlcm.ResetAction{LAT: "Usage"},
	); err != nil {
		log.Fatal(err)
	}
	if err := db.SetTimer("audit", 400*time.Millisecond, 2); err != nil {
		log.Fatal(err)
	}

	// Two applications with different query habits.
	web := db.Session("svc", "webapp")
	batch := db.Session("svc", "batch")
	deadline := time.Now().Add(900 * time.Millisecond)
	i := 0
	for time.Now().Before(deadline) {
		i++
		mustExec(web, fmt.Sprintf("SELECT bytes FROM docs WHERE id = %d", i%2000+1))
		if i%25 == 0 {
			mustExec(batch, "SELECT owner, COUNT(*), SUM(bytes) FROM docs GROUP BY owner")
		}
	}
	time.Sleep(200 * time.Millisecond) // let the final timer window fire
	db.Flush(2 * time.Second)          // actions run async; quiesce before reading

	rows, err := db.ReadTable("usage_report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usage report (%d persisted window rows):\n", len(rows))
	// Columns: Application, Logical_Signature, Freq, Avg_Dur, Max_Dur, Sample, sqlcm_ts.
	for _, r := range rows {
		fmt.Printf("  %-8s x%-5d avg=%8.1fus max=%8.1fus  %.50s\n",
			r[0].Str(), r[2].Int(), r[3].Float()*1e6, r[4].Float()*1e6, r[5].Str())
	}
}

func mustExec(sess *sqlcm.Session, sql string) {
	if _, err := sess.Exec(sql, nil); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
