// Blocking hotspots (Example 2, §3 of the paper): track, per blocking
// statement, the total time it made other statements wait on locks —
// useful for finding lock hotspots caused by application design.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"sqlcm"
)

func main() {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	setup := db.Session("admin", "setup")
	mustExec(setup, "CREATE TABLE inventory (sku INT PRIMARY KEY, stock INT)")
	for i := 1; i <= 1000; i++ {
		mustExec(setup, fmt.Sprintf("INSERT INTO inventory VALUES (%d, %d)", i, i*3))
	}

	// The LAT of Example 2: blocking statements with their total inflicted
	// delay and how many waiters they held up.
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "Block_LAT",
		GroupBy: []string{"Blocker.Query_Text"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Sum, Attr: "Blocked.Wait_Time", Name: "Total_Wait"},
			{Func: sqlcm.Count, Name: "Waiters"},
			{Func: sqlcm.Max, Attr: "Blocked.Wait_Time", Name: "Worst_Wait"},
		},
		OrderBy: []sqlcm.OrderKey{{Col: "Total_Wait", Desc: true}},
		MaxRows: 20,
	}); err != nil {
		log.Fatal(err)
	}
	// Rule: on every lock release that freed waiters, charge each waiter's
	// delay to the blocking statement.
	if _, err := db.NewRule("blocking", "Query.Block_Released", "",
		&sqlcm.InsertAction{LAT: "Block_LAT"}); err != nil {
		log.Fatal(err)
	}

	// Simulate an application with a long write transaction (the hotspot)
	// and several checkout writers that pile up behind it. (Reads are MVCC
	// snapshot reads and never block — only writers contend for locks.)
	writer := db.Session("batch", "nightly-job")
	mustExec(writer, "BEGIN")
	mustExec(writer, "UPDATE inventory SET stock = stock - 1 WHERE sku = 42")

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			checkout := db.Session(fmt.Sprintf("web-%d", i), "storefront")
			sql := fmt.Sprintf("UPDATE inventory SET stock = stock - 1 WHERE sku = %d", i+1)
			if _, err := checkout.Exec(sql, nil); err != nil {
				log.Printf("checkout %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(300 * time.Millisecond) // the checkouts wait on the writer's lock
	mustExec(writer, "COMMIT")
	wg.Wait()

	lt, _ := db.LAT("Block_LAT")
	fmt.Println("statements ranked by total blocking delay inflicted:")
	for _, row := range lt.Rows() {
		fmt.Printf("  total=%6.0fms waiters=%d worst=%6.0fms  %.60s\n",
			row[1].Float()*1e3, row[2].Int(), row[3].Float()*1e3, row[0].Str())
	}
}

func mustExec(sess *sqlcm.Session, sql string) {
	if _, err := sess.Exec(sql, nil); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
