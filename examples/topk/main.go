// Top-k most expensive queries (Example 3, §3 of the paper): a
// size-bounded, ordered LAT keeps exactly the k most expensive statements
// at all times; at the end of the observation window it is persisted to a
// table for SQL post-processing.
package main

import (
	"fmt"
	"log"

	"sqlcm"
)

func main() {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sess := db.Session("app", "reporting")
	mustExec(sess, "CREATE TABLE events (id INT PRIMARY KEY, kind INT, payload VARCHAR)")
	for i := 1; i <= 3000; i++ {
		mustExec(sess, fmt.Sprintf("INSERT INTO events VALUES (%d, %d, 'payload-%d')", i, i%17, i))
	}

	// The LAT keeps only the 10 most expensive statement texts, ordered by
	// duration; cheaper rows are evicted automatically (§4.3).
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "TopQ",
		GroupBy: []string{"Query_Text"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Max, Attr: "Duration", Name: "Duration"},
			{Func: sqlcm.Count, Name: "Runs"},
		},
		OrderBy: []sqlcm.OrderKey{{Col: "Duration", Desc: true}},
		MaxRows: 10,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.NewRule("topq", "Query.Commit", "",
		&sqlcm.InsertAction{LAT: "TopQ"}); err != nil {
		log.Fatal(err)
	}

	// The workload: lots of cheap point queries, a few expensive scans.
	for i := 1; i <= 500; i++ {
		mustExec(sess, fmt.Sprintf("SELECT payload FROM events WHERE id = %d", i))
	}
	for k := 0; k < 5; k++ {
		mustExec(sess, fmt.Sprintf("SELECT kind, COUNT(*) FROM events WHERE id > %d GROUP BY kind ORDER BY COUNT(*) DESC", k))
	}

	// Persist the result and post-process it with plain SQL.
	if err := db.PersistLAT("TopQ", "topq_report"); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Exec("SELECT Query_Text, Duration, Runs FROM topq_report ORDER BY Duration DESC", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-10 most expensive statements:")
	for i, row := range res.Rows {
		fmt.Printf("%2d. %8.3fms x%-4d %.60s\n",
			i+1, row[1].Float()*1e3, row[2].Int(), row[0].Str())
	}
}

func mustExec(sess *sqlcm.Session, sql string) {
	if _, err := sess.Exec(sql, nil); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
