// Quickstart: open a monitored database, declare one LAT and one rule
// (the slow-query persist rule from §2.3 of the paper), run some SQL, and
// inspect what the monitor collected.
package main

import (
	"fmt"
	"log"

	"sqlcm"
)

func main() {
	db, err := sqlcm.Open(sqlcm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A LAT grouping all statements by their logical signature (i.e. by
	// query template) with execution statistics per template.
	if _, err := db.DefineLAT(sqlcm.LATSpec{
		Name:    "ByTemplate",
		GroupBy: []string{"Logical_Signature"},
		Aggs: []sqlcm.AggCol{
			{Func: sqlcm.Count, Name: "N"},
			{Func: sqlcm.Avg, Attr: "Duration", Name: "Avg_Duration"},
			{Func: sqlcm.Max, Attr: "Duration", Name: "Max_Duration"},
			{Func: sqlcm.First, Attr: "Query_Text", Name: "Sample"},
		},
	}); err != nil {
		log.Fatal(err)
	}
	// Rule: fold every committed statement into the LAT.
	if _, err := db.NewRule("collect", "Query.Commit", "",
		&sqlcm.InsertAction{LAT: "ByTemplate"}); err != nil {
		log.Fatal(err)
	}
	// Rule: persist any statement slower than 100 seconds — the paper's
	// §2.3 example, verbatim.
	if _, err := db.NewRule("slow", "Query.Commit", "Query.Duration > 100",
		&sqlcm.PersistAction{Table: "slow_queries", Attrs: []string{"ID", "Query_Text", "Duration"}},
	); err != nil {
		log.Fatal(err)
	}

	// Ordinary application work.
	sess := db.Session("alice", "quickstart")
	mustExec(sess, "CREATE TABLE accounts (id INT PRIMARY KEY, owner VARCHAR NOT NULL, balance FLOAT)")
	for i := 1; i <= 100; i++ {
		mustExec(sess, fmt.Sprintf("INSERT INTO accounts VALUES (%d, 'user%d', %d.0)", i, i%7, i*10))
	}
	for i := 1; i <= 50; i++ {
		mustExec(sess, fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", i))
	}
	mustExec(sess, "SELECT owner, SUM(balance) FROM accounts GROUP BY owner")

	// What did the monitor see?
	lt, _ := db.LAT("ByTemplate")
	fmt.Println("query templates observed (grouped by logical signature):")
	fmt.Println()
	for _, row := range lt.Rows() {
		// Columns: Logical_Signature, N, Avg_Duration, Max_Duration, Sample.
		fmt.Printf("  %4s x%-4d avg=%8.1fus  %.60s\n",
			row[0].Str()[:4], row[1].Int(), row[2].Float()*1e6, row[4].Str())
	}
}

func mustExec(sess *sqlcm.Session, sql string) {
	if _, err := sess.Exec(sql, nil); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
