package sqlcm

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"sqlcm/internal/rules"
	"sqlcm/internal/workload"
)

// TestLoadRuleSet drives the declarative rule-set path end to end: the
// shipped quickstart rule set is loaded into a live DB, a workload runs,
// and both the LAT it defines and the persist rule it installs must have
// observed traffic.
func TestLoadRuleSet(t *testing.T) {
	db, err := Open(Config{PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	src, err := os.ReadFile("examples/rulesets/quickstart.rules")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadRuleSet(string(src)); err != nil {
		t.Fatalf("LoadRuleSet: %v", err)
	}
	if diags := db.RuleWarnings(); len(diags) != 0 {
		t.Fatalf("shipped rule set produced diagnostics: %v", diags)
	}

	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)", nil); err != nil {
		t.Fatal(err)
	}
	sess := db.Session("alice", "loadruleset")
	for i := 1; i <= 20; i++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d.5)", i, i), nil); err != nil {
			t.Fatal(err)
		}
	}

	lat, ok := db.LAT("ByTemplate")
	if !ok {
		t.Fatal("LAT ByTemplate not defined by rule set")
	}
	if rows := lat.Rows(); len(rows) == 0 {
		t.Error("ByTemplate LAT saw no traffic")
	}

	// A defective set must be rejected wholesale in strict mode.
	strict, err := Open(Config{PoolPages: 256, RuleCheck: RuleCheckStrict})
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	bad := `
rule dead on Query.Commit {
    when Duration > 10 AND Duration < 5
    sendmail "dba@example.com" "never"
}
`
	if err := strict.LoadRuleSet(bad); err == nil {
		t.Error("strict mode accepted a rule set with a dead rule")
	} else if !strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("rejection should name the finding, got: %v", err)
	}
}

// TestUnsatRulesNeverFire is the soundness property behind the sat
// analysis: any rule the checker marks unsatisfiable must never fire, no
// matter what the workload does. Each candidate rule counts its firings
// through a FuncAction; the rules the checker flags with a [sat] error
// must end every randomized workload run at zero, while at least one
// satisfiable control rule must have fired (so a silently dead event path
// cannot make the property pass vacuously).
func TestUnsatRulesNeverFire(t *testing.T) {
	conds := []string{
		// Candidates the checker should prove dead.
		"Duration > 10 AND Duration < 5",
		"Times_Blocked > 2 AND Times_Blocked < 3",
		"Duration < 0 AND Duration > 0",
		"User = 'alice' AND User = 'bob'",
		// Satisfiable controls; the first two hold for every query.
		"Duration >= 0",
		"Times_Blocked >= 0",
		"Duration > 100000",
	}

	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db, err := Open(Config{PoolPages: 512, RuleCheck: RuleCheckWarn})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			fired := make([]atomic.Int64, len(conds))
			for i, cond := range conds {
				i := i
				name := fmt.Sprintf("cand%d", i)
				_, err := db.NewRule(name, "Query.Commit", cond, &FuncAction{
					Name: name,
					Fn:   func(rules.Env, *rules.Ctx) error { fired[i].Add(1); return nil },
				})
				if err != nil {
					t.Fatalf("rule %q: %v", cond, err)
				}
			}

			// Classify by the checker's verdict, not by our own
			// expectations: the property under test is "marked unsat ⇒
			// never fires".
			unsat := make([]bool, len(conds))
			marked := 0
			for _, d := range db.RuleWarnings() {
				if d.Analysis != "sat" || !strings.Contains(d.Message, "unsatisfiable") {
					continue
				}
				var i int
				if _, err := fmt.Sscanf(d.Rule, "cand%d", &i); err == nil && i < len(conds) {
					unsat[i] = true
					marked++
				}
			}
			if marked < 3 {
				t.Fatalf("checker marked only %d rules unsatisfiable; expected at least 3 (diags: %v)",
					marked, db.RuleWarnings())
			}

			cfg, err := workload.Setup(db.Engine(), workload.Config{
				Lineitems: 400, ShortQueries: 60, JoinQueries: 3, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := workload.Run(db.Engine(), workload.Mix(cfg), "prop", "rulecheck"); err != nil {
				t.Fatal(err)
			}

			sawControl := false
			for i, cond := range conds {
				n := fired[i].Load()
				if unsat[i] && n != 0 {
					t.Errorf("rule marked unsatisfiable fired %d times: %s", n, cond)
				}
				if !unsat[i] && n > 0 {
					sawControl = true
				}
			}
			if !sawControl {
				t.Error("no satisfiable control rule fired; the workload did not exercise Query.Commit")
			}
		})
	}
}
