GO ?= go

.PHONY: build vet lint test race chaos lockdep lockdoc fuzz bench ci

build:
	$(GO) build ./...

# Vet tier: go vet plus SQLCM's own analyzers — the hot-path and
# recover-discipline source checks, the lock-hierarchy checker over the
# //sqlcm:lock annotations, and static analysis of the shipped rule sets
# (which must be finding-free even in strict mode). docs/lock-order.md
# must match the annotations.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sqlcm-vet -code .
	$(GO) run ./cmd/sqlcm-vet -lockdoc .
	$(GO) run ./cmd/sqlcm-vet -mode strict examples/rulesets

# Lint tier: staticcheck at a pinned version (offline fallback runs the
# in-repo analyzers instead), on top of the vet tier.
lint: vet
	./scripts/staticcheck.sh

test:
	$(GO) test ./...

# Race tier: the concurrency tests (striped LATs, copy-on-write rule
# index, sharded caches, event bus) are only meaningful under -race.
race:
	$(GO) test -race ./...

# Chaos tier: fault-injection tests for the fail-safe layer (panic
# quarantine, outbox retry/backoff/shedding, crash-safe checkpointing),
# run under -race because the faults race against live dispatch.
chaos:
	$(GO) test -race -run 'TestChaos|TestEviction' -count=1 ./internal/core/
	$(GO) test -race -count=1 ./internal/faults/ ./internal/outbox/

# Lockdep tier: run the chaos and concurrency suites with the runtime
# lock-order assertions compiled in (sqlcmlockdep) under -race, plus the
# tag-gated lockdep unit tests themselves. Any lock acquired against the
# observed order panics with both stacks instead of deadlocking. Also
# verifies docs/lock-order.md is current.
lockdep:
	$(GO) run ./cmd/sqlcm-vet -lockdoc .
	$(GO) test -tags sqlcmlockdep -race -count=1 ./internal/lockcheck/... ./internal/lat/ ./internal/rules/ ./internal/monitor/ ./internal/event/
	$(GO) test -tags sqlcmlockdep -race -run 'TestChaos|TestEviction' -count=1 ./internal/core/
	$(GO) test -tags sqlcmlockdep -race -count=1 ./internal/faults/ ./internal/outbox/

# Regenerate docs/lock-order.md from the //sqlcm:lock annotations.
lockdoc:
	$(GO) run ./cmd/sqlcm-vet -lockdoc -write .

# Fuzz smoke: harden the {ref} substitution scanner.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSubstitute -fuzztime=30s ./internal/rules/

bench:
	$(GO) test -run xxx -bench . -benchtime 1000x ./...

ci:
	./scripts/ci.sh
