GO ?= go

.PHONY: build vet test race chaos fuzz bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race tier: the concurrency tests (striped LATs, copy-on-write rule
# index, sharded caches, event bus) are only meaningful under -race.
race:
	$(GO) test -race ./...

# Chaos tier: fault-injection tests for the fail-safe layer (panic
# quarantine, outbox retry/backoff/shedding, crash-safe checkpointing),
# run under -race because the faults race against live dispatch.
chaos:
	$(GO) test -race -run 'TestChaos|TestEviction' -count=1 ./internal/core/
	$(GO) test -race -count=1 ./internal/faults/ ./internal/outbox/

# Fuzz smoke: harden the {ref} substitution scanner.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSubstitute -fuzztime=30s ./internal/rules/

bench:
	$(GO) test -run xxx -bench . -benchtime 1000x ./...

ci:
	./scripts/ci.sh
