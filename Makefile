GO ?= go

.PHONY: build vet vet-bench lint test race chaos netchaos lockdep lockdoc fuzz bench bench-json serve-smoke mvcc-smoke sim sim-long sim-mvcc cover ci

build:
	$(GO) build ./...

# Vet tier: go vet plus SQLCM's own analyzers (sqlcm-vet -analyzers lists
# them) — hot-path hygiene, the rule-callback recover discipline, context
# propagation, cancellation-point proofs, goroutine ownership, the
# SQLSTATE single-source check, and the lock-hierarchy checker fed the
# type-aware layer's cross-package acquire summaries — and static
# analysis of the shipped rule sets (which must be finding-free even in
# strict mode). docs/lock-order.md must match the annotations.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sqlcm-vet -code .
	$(GO) run ./cmd/sqlcm-vet -lockdoc .
	$(GO) run ./cmd/sqlcm-vet -mode strict examples/rulesets

# Analyzer latency budget: the whole-tree type-aware -code run must stay
# under 30 seconds (it currently runs in a few) so it can live in
# precommit workflows; a loader regression that re-type-checks the
# standard library per package would blow this immediately.
vet-bench:
	@start=$$(date +%s); $(GO) run ./cmd/sqlcm-vet -code .; end=$$(date +%s); \
	elapsed=$$((end-start)); echo "sqlcm-vet -code . took $${elapsed}s (budget 30s)"; \
	test $$elapsed -le 30

# Lint tier: staticcheck at a pinned version (offline fallback runs the
# in-repo analyzers instead), on top of the vet tier.
lint: vet
	./scripts/staticcheck.sh

test:
	$(GO) test ./...

# Race tier: the concurrency tests (striped LATs, copy-on-write rule
# index, sharded caches, event bus) are only meaningful under -race.
race:
	$(GO) test -race ./...

# Chaos tier: fault-injection tests for the fail-safe layer (panic
# quarantine, outbox retry/backoff/shedding, crash-safe checkpointing),
# run under -race because the faults race against live dispatch.
chaos:
	$(GO) test -race -run 'TestChaos|TestEviction' -count=1 ./internal/core/
	$(GO) test -race -count=1 ./internal/faults/ ./internal/outbox/

# Netchaos tier: the open-loop load harness driven through the
# fault-injecting listener (internal/faults/netfaults) under -race: 30%
# of connections get latency/bandwidth/partial-write/slow-loris/reset/
# blackhole toxics. Gates on zero protocol-corruption errors on surviving
# connections, a clean drain within budget, and no leaked goroutines.
netchaos:
	$(GO) test -race -count=1 -run TestNetChaos ./internal/loadgen/

# Lockdep tier: run the chaos and concurrency suites with the runtime
# lock-order assertions compiled in (sqlcmlockdep) under -race, plus the
# tag-gated lockdep unit tests themselves. Any lock acquired against the
# observed order panics with both stacks instead of deadlocking. Also
# verifies docs/lock-order.md is current.
lockdep:
	$(GO) run ./cmd/sqlcm-vet -lockdoc .
	$(GO) test -tags sqlcmlockdep -race -count=1 ./internal/lockcheck/... ./internal/lat/ ./internal/rules/ ./internal/monitor/ ./internal/event/ ./internal/engine/ ./internal/server/
	$(GO) test -tags sqlcmlockdep -race -run 'TestChaos|TestEviction' -count=1 ./internal/core/
	$(GO) test -tags sqlcmlockdep -race -count=1 ./internal/faults/ ./internal/outbox/

# Regenerate docs/lock-order.md from the //sqlcm:lock annotations.
lockdoc:
	$(GO) run ./cmd/sqlcm-vet -lockdoc -write .

# Sim tier: the deterministic simulation harness replays seeded workloads
# through the real monitoring stack and a naive sequential oracle in
# lockstep, comparing every journal entry and every LAT cell after every
# event. 64 seeds across all three workload profiles, plus the golden
# trace replays and the fault-injection/shrinker acceptance tests.
sim:
	SQLCM_SIM_SEEDS=64 $(GO) test -count=1 ./internal/sim/

# Extended sweep for soak runs: more seeds, longer traces.
sim-long:
	SQLCM_SIM_SEEDS=256 SQLCM_SIM_EVENTS=1200 $(GO) test -count=1 -timeout 30m ./internal/sim/

# MVCC tier: the differential visibility oracle (real version store vs a
# naive full-history recompute) over a 64-seed sweep, the golden traces
# replayed on the MVCC build with fingerprints pinned unchanged, and the
# single-session lock-schedule invariance check (identical results, rule
# journal and LAT contents with MVCC on vs off).
sim-mvcc:
	SQLCM_SIM_SEEDS=64 $(GO) test -count=1 -run 'TestMVCCVisibilitySweep|TestGoldenReplayMVCC|TestSingleSessionMVCCInvariance' ./internal/sim/

# Coverage floors for the packages the differential oracle leans on.
cover:
	./scripts/coverfloor.sh

# Fuzz smoke: harden the {ref} substitution scanner and the wire-protocol
# frame parser. One -fuzz target per go test invocation.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSubstitute -fuzztime=30s ./internal/rules/
	$(GO) test -run='^$$' -fuzz=FuzzProtoFrame -fuzztime=30s ./internal/server/

bench:
	$(GO) test -run xxx -bench . -benchtime 1000x ./...

# Committed benchmark snapshot: monitoring hot paths (event dispatch,
# LAT observe), wire-level load percentiles at a fixed connection count
# with monitoring on vs off, the same load clean vs under 5ms network
# jitter, and read-mostly readers vs one hot writer with MVCC snapshot
# reads against the 2PL baseline. Full run; see BENCH_10.json.
bench-json:
	$(GO) run ./cmd/sqlcm-benchjson -out BENCH_10.json

# Loopback smoke tier: a short open-loop load run (internal/loadgen)
# against an in-process network front-end under -race — nonzero
# throughput, zero statement errors, clean graceful drain.
serve-smoke:
	$(GO) test -race -count=1 -run TestServeSmoke ./internal/loadgen/

# MVCC smoke tier: read-mostly Zipf load with monitoring on — a reader
# fleet plus one hot writer — under -race; snapshot readers must never
# surface as Query.Blocked events.
mvcc-smoke:
	$(GO) test -race -count=1 -run TestMVCCSmoke ./internal/loadgen/

ci:
	./scripts/ci.sh
