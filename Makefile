GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race tier: the concurrency tests (striped LATs, copy-on-write rule
# index, sharded caches, event bus) are only meaningful under -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1000x ./...

ci:
	./scripts/ci.sh
